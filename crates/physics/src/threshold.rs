//! The threshold-voltage ⇄ doping-level mapping `f` of the paper
//! (Proposition 1): a monotone, bijective function from the channel doping
//! `N_D` of a doping region to the threshold voltage `V_T` of the transistor
//! that region forms under its mesowire.
//!
//! The model is the long-channel MOS threshold equation of Sze & Ng (the
//! paper's ref. [14]):
//!
//! ```text
//! V_T(N_A) = V_FB + 2ψ_B + sqrt(2 ε_Si q N_A · 2ψ_B) / C_ox
//! ψ_B      = (kT/q) · ln(N_A / n_i)
//! ```
//!
//! Only two properties of `f` are load-bearing for the paper's propositions —
//! monotonicity and bijectivity — so the absolute values need only be
//! plausible (doping in the 10¹⁸ cm⁻³ decade for thresholds below 1 V).
//! [`DopingLadder`] additionally supports explicit digit→(V_T, N_D) tables so
//! the worked examples of the paper (V_T ∈ {0.1, 0.3, 0.5} V, N_D ∈
//! {2, 4, 9}·10¹⁸ cm⁻³) can be reproduced exactly.

use serde::{Deserialize, Serialize};

use crate::error::{PhysicsError, Result};
use crate::materials::{
    bulk_potential, oxide_capacitance_per_area, silicon_permittivity, ELEMENTARY_CHARGE,
};
use crate::units::{DopantConcentration, Nanometers, Volts};

/// Lower bound of the doping range the solver searches, in cm⁻³.
const SOLVER_MIN_DOPING: f64 = 1e15;
/// Upper bound of the doping range the solver searches, in cm⁻³.
const SOLVER_MAX_DOPING: f64 = 5e20;
/// Bisection iterations; 200 halvings are far below f64 resolution over the
/// solver range.
const SOLVER_ITERATIONS: usize = 200;
/// Relative tolerance on the solved threshold voltage.
const SOLVER_TOLERANCE: f64 = 1e-10;

/// Long-channel MOS threshold-voltage model.
///
/// # Examples
///
/// ```
/// use device_physics::{Nanometers, ThresholdModel, Volts};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = ThresholdModel::default_mspt();
/// let doping = model.doping_for_threshold(Volts::new(0.5))?;
/// let back = model.threshold_for_doping(doping);
/// assert!((back.value() - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdModel {
    /// Gate-oxide thickness.
    oxide_thickness: Nanometers,
    /// Flat-band voltage (gate work-function difference plus fixed charge).
    flat_band_voltage: Volts,
}

impl ThresholdModel {
    /// Creates a threshold model.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidParameter`] when the oxide thickness is
    /// not positive or the flat-band voltage is not finite.
    pub fn new(oxide_thickness: Nanometers, flat_band_voltage: Volts) -> Result<Self> {
        if !(oxide_thickness.value() > 0.0 && oxide_thickness.is_finite()) {
            return Err(PhysicsError::InvalidParameter {
                name: "oxide_thickness",
                value: oxide_thickness.value(),
                constraint: "must be positive and finite",
            });
        }
        if !flat_band_voltage.is_finite() {
            return Err(PhysicsError::InvalidParameter {
                name: "flat_band_voltage",
                value: flat_band_voltage.value(),
                constraint: "must be finite",
            });
        }
        Ok(ThresholdModel {
            oxide_thickness,
            flat_band_voltage,
        })
    }

    /// The default parameterisation used by the reproduction: a 2 nm gate
    /// oxide and a flat-band voltage of −1 V, which places thresholds of
    /// 0–1 V in the 10¹⁸ cm⁻³ doping decade (the decade of the paper's worked
    /// examples).
    #[must_use]
    pub fn default_mspt() -> Self {
        ThresholdModel {
            oxide_thickness: Nanometers::new(2.0),
            flat_band_voltage: Volts::new(-1.0),
        }
    }

    /// The gate-oxide thickness.
    #[must_use]
    pub fn oxide_thickness(&self) -> Nanometers {
        self.oxide_thickness
    }

    /// The flat-band voltage.
    #[must_use]
    pub fn flat_band_voltage(&self) -> Volts {
        self.flat_band_voltage
    }

    /// The threshold voltage produced by a channel doping level
    /// (the forward direction of the bijection `f`).
    #[must_use]
    pub fn threshold_for_doping(&self, doping: DopantConcentration) -> Volts {
        let na_cm3 = doping.value().max(SOLVER_MIN_DOPING);
        let two_psi_b = 2.0 * bulk_potential(na_cm3);
        let na_m3 = na_cm3 * 1e6;
        let depletion_charge =
            (2.0 * silicon_permittivity() * ELEMENTARY_CHARGE * na_m3 * two_psi_b).sqrt();
        let cox = oxide_capacitance_per_area(self.oxide_thickness.value());
        Volts::new(self.flat_band_voltage.value() + two_psi_b + depletion_charge / cox)
    }

    /// The doping level that produces a target threshold voltage (the inverse
    /// direction of the bijection `f`), solved by bisection over the doping
    /// range `10¹⁵ .. 5·10²⁰ cm⁻³`.
    ///
    /// # Errors
    ///
    /// * [`PhysicsError::ThresholdOutOfRange`] when the target lies outside
    ///   the range reachable over the solver's doping bounds.
    /// * [`PhysicsError::SolverDidNotConverge`] if bisection fails to reach
    ///   the tolerance (practically unreachable for a monotone function).
    pub fn doping_for_threshold(&self, target: Volts) -> Result<DopantConcentration> {
        let lo_v = self
            .threshold_for_doping(DopantConcentration::new(SOLVER_MIN_DOPING))
            .value();
        let hi_v = self
            .threshold_for_doping(DopantConcentration::new(SOLVER_MAX_DOPING))
            .value();
        let t = target.value();
        if t < lo_v || t > hi_v {
            return Err(PhysicsError::ThresholdOutOfRange {
                requested_volts: t,
                min_volts: lo_v,
                max_volts: hi_v,
            });
        }

        // Bisection on log10(N_A): V_T is monotone increasing in N_A.
        let mut lo = SOLVER_MIN_DOPING.log10();
        let mut hi = SOLVER_MAX_DOPING.log10();
        for _ in 0..SOLVER_ITERATIONS {
            let mid = 0.5 * (lo + hi);
            let na = 10f64.powf(mid);
            let v = self
                .threshold_for_doping(DopantConcentration::new(na))
                .value();
            if (v - t).abs() <= SOLVER_TOLERANCE * t.abs().max(1.0) {
                return Ok(DopantConcentration::new(na));
            }
            if v < t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // The interval has shrunk to f64 resolution; accept the midpoint.
        let na = 10f64.powf(0.5 * (lo + hi));
        let v = self
            .threshold_for_doping(DopantConcentration::new(na))
            .value();
        if (v - t).abs() <= 1e-6 {
            Ok(DopantConcentration::new(na))
        } else {
            Err(PhysicsError::SolverDidNotConverge {
                iterations: SOLVER_ITERATIONS,
            })
        }
    }
}

impl Default for ThresholdModel {
    fn default() -> Self {
        ThresholdModel::default_mspt()
    }
}

/// One rung of a [`DopingLadder`]: the threshold voltage and doping level of
/// a logic value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DopingLevel {
    /// The nominal threshold voltage of the level.
    pub threshold: Volts,
    /// The doping level that produces the threshold.
    pub doping: DopantConcentration,
}

/// The digit → (threshold voltage, doping level) table of a multi-valued
/// decoder: the composition `h = f ∘ g` of the paper's Proposition 1.
///
/// The ladder is strictly monotone in both the threshold voltages and the
/// doping levels, which is what makes `h` bijective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DopingLadder {
    levels: Vec<DopingLevel>,
}

impl DopingLadder {
    /// Builds a ladder of `level_count` evenly spaced threshold voltages
    /// spanning `v_range`, with the doping of each level solved from the
    /// threshold model.
    ///
    /// The paper distributes the thresholds "within the range 0 to 1 V"; the
    /// convention used here places level `l` at
    /// `v_lo + (l + 1/2) · (v_hi − v_lo) / n`, so that every level keeps the
    /// same decision-window half-width `(v_hi − v_lo) / (2n)` on both sides.
    ///
    /// # Errors
    ///
    /// * [`PhysicsError::InvalidLadder`] when `level_count < 2` or the range
    ///   is degenerate.
    /// * Any error of [`ThresholdModel::doping_for_threshold`].
    pub fn from_model(
        model: &ThresholdModel,
        level_count: usize,
        v_range: (Volts, Volts),
    ) -> Result<Self> {
        if level_count < 2 {
            return Err(PhysicsError::InvalidLadder {
                reason: format!("need at least two levels, got {level_count}"),
            });
        }
        let (lo, hi) = (v_range.0.value(), v_range.1.value());
        // `partial_cmp` keeps NaN bounds on the error path (NaN is not
        // Greater), matching the previous `!(hi > lo)` check.
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(PhysicsError::InvalidLadder {
                reason: format!("degenerate voltage range [{lo}, {hi}]"),
            });
        }
        let step = (hi - lo) / level_count as f64;
        let mut levels = Vec::with_capacity(level_count);
        for l in 0..level_count {
            let threshold = Volts::new(lo + (l as f64 + 0.5) * step);
            let doping = model.doping_for_threshold(threshold)?;
            levels.push(DopingLevel { threshold, doping });
        }
        Ok(DopingLadder { levels })
    }

    /// Builds a ladder from explicit (threshold, doping) pairs, indexed by
    /// digit value. Used to reproduce the paper's worked examples, where the
    /// mapping is given directly.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidLadder`] when fewer than two levels are
    /// given or either column is not strictly increasing.
    pub fn from_explicit(levels: Vec<DopingLevel>) -> Result<Self> {
        if levels.len() < 2 {
            return Err(PhysicsError::InvalidLadder {
                reason: format!("need at least two levels, got {}", levels.len()),
            });
        }
        for pair in levels.windows(2) {
            if pair[1].threshold.value() <= pair[0].threshold.value() {
                return Err(PhysicsError::InvalidLadder {
                    reason: "threshold voltages must be strictly increasing".to_string(),
                });
            }
            if pair[1].doping.value() <= pair[0].doping.value() {
                return Err(PhysicsError::InvalidLadder {
                    reason: "doping levels must be strictly increasing".to_string(),
                });
            }
        }
        Ok(DopingLadder { levels })
    }

    /// The paper's worked-example ladder (Examples 1–6): digits 0, 1, 2 map
    /// to thresholds 0.1, 0.3, 0.5 V and dopings 2, 4, 9 × 10¹⁸ cm⁻³.
    #[must_use]
    pub fn paper_example() -> Self {
        DopingLadder {
            levels: vec![
                DopingLevel {
                    threshold: Volts::new(0.1),
                    doping: DopantConcentration::from_1e18(2.0),
                },
                DopingLevel {
                    threshold: Volts::new(0.3),
                    doping: DopantConcentration::from_1e18(4.0),
                },
                DopingLevel {
                    threshold: Volts::new(0.5),
                    doping: DopantConcentration::from_1e18(9.0),
                },
            ],
        }
    }

    /// The number of logic levels of the ladder (the radix `n`).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The levels of the ladder, in digit order.
    #[must_use]
    pub fn levels(&self) -> &[DopingLevel] {
        &self.levels
    }

    /// The level of a digit.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::LevelOutOfRange`] when the digit has no level.
    pub fn level(&self, digit: u8) -> Result<DopingLevel> {
        self.levels
            .get(usize::from(digit))
            .copied()
            .ok_or(PhysicsError::LevelOutOfRange {
                digit,
                levels: self.levels.len(),
            })
    }

    /// The threshold voltage of a digit (`g` in Proposition 1).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::LevelOutOfRange`] when the digit has no level.
    pub fn threshold(&self, digit: u8) -> Result<Volts> {
        Ok(self.level(digit)?.threshold)
    }

    /// The doping level of a digit (`h = f ∘ g` in Proposition 1).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::LevelOutOfRange`] when the digit has no level.
    pub fn doping(&self, digit: u8) -> Result<DopantConcentration> {
        Ok(self.level(digit)?.doping)
    }

    /// The digit whose doping level is closest to `doping` — the inverse of
    /// `h`, used to verify bijectivity and to decode fabricated profiles.
    #[must_use]
    pub fn digit_for_doping(&self, doping: DopantConcentration) -> u8 {
        let mut best = 0u8;
        let mut best_err = f64::INFINITY;
        for (digit, level) in self.levels.iter().enumerate() {
            let err = (level.doping.value() - doping.value()).abs();
            if err < best_err {
                best_err = err;
                best = digit as u8;
            }
        }
        best
    }

    /// The decision-window half-width implied by the ladder: half the
    /// smallest separation between adjacent threshold levels. A region is
    /// considered addressable when its actual threshold stays within this
    /// window of the nominal level (Section 6.1, following ref. \[2\]).
    #[must_use]
    pub fn window_half_width(&self) -> Volts {
        let min_sep = self
            .levels
            .windows(2)
            .map(|pair| pair[1].threshold.value() - pair[0].threshold.value())
            .fold(f64::INFINITY, f64::min);
        Volts::new(min_sep / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_construction_validates_inputs() {
        assert!(ThresholdModel::new(Nanometers::new(0.0), Volts::ZERO).is_err());
        assert!(ThresholdModel::new(Nanometers::new(-1.0), Volts::ZERO).is_err());
        assert!(ThresholdModel::new(Nanometers::new(2.0), Volts::new(f64::NAN)).is_err());
        assert!(ThresholdModel::new(Nanometers::new(2.0), Volts::new(-1.0)).is_ok());
        assert_eq!(ThresholdModel::default(), ThresholdModel::default_mspt());
    }

    #[test]
    fn threshold_is_monotone_in_doping() {
        let model = ThresholdModel::default_mspt();
        let mut previous = f64::NEG_INFINITY;
        for exp in [16.0, 17.0, 17.5, 18.0, 18.5, 19.0, 19.5, 20.0] {
            let vt = model
                .threshold_for_doping(DopantConcentration::new(10f64.powf(exp)))
                .value();
            assert!(vt > previous, "V_T must increase with doping");
            previous = vt;
        }
    }

    #[test]
    fn default_model_puts_sub_volt_thresholds_in_the_1e18_decade() {
        let model = ThresholdModel::default_mspt();
        for target in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let doping = model.doping_for_threshold(Volts::new(target)).unwrap();
            assert!(
                doping.value() > 1e17 && doping.value() < 2e19,
                "V_T = {target} V solved to {} cm^-3",
                doping.value()
            );
        }
    }

    #[test]
    fn forward_and_inverse_roundtrip() {
        let model = ThresholdModel::default_mspt();
        for target in [0.05, 0.2, 0.45, 0.8, 1.0] {
            let doping = model.doping_for_threshold(Volts::new(target)).unwrap();
            let back = model.threshold_for_doping(doping).value();
            assert!((back - target).abs() < 1e-6, "target {target}, got {back}");
        }
    }

    #[test]
    fn unreachable_thresholds_are_rejected() {
        let model = ThresholdModel::default_mspt();
        assert!(matches!(
            model.doping_for_threshold(Volts::new(-5.0)),
            Err(PhysicsError::ThresholdOutOfRange { .. })
        ));
        assert!(matches!(
            model.doping_for_threshold(Volts::new(50.0)),
            Err(PhysicsError::ThresholdOutOfRange { .. })
        ));
    }

    #[test]
    fn ladder_from_model_is_monotone_and_windowed() {
        let model = ThresholdModel::default_mspt();
        let ladder =
            DopingLadder::from_model(&model, 4, (Volts::new(0.0), Volts::new(1.0))).unwrap();
        assert_eq!(ladder.level_count(), 4);
        // Levels at 0.125, 0.375, 0.625, 0.875 V.
        assert!((ladder.threshold(0).unwrap().value() - 0.125).abs() < 1e-9);
        assert!((ladder.threshold(3).unwrap().value() - 0.875).abs() < 1e-9);
        // Monotone doping.
        for pair in ladder.levels().windows(2) {
            assert!(pair[1].doping.value() > pair[0].doping.value());
        }
        // Window half-width is half the level separation: 0.125 V.
        assert!((ladder.window_half_width().value() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn ladder_requires_at_least_two_levels_and_a_range() {
        let model = ThresholdModel::default_mspt();
        assert!(DopingLadder::from_model(&model, 1, (Volts::new(0.0), Volts::new(1.0))).is_err());
        assert!(DopingLadder::from_model(&model, 2, (Volts::new(1.0), Volts::new(1.0))).is_err());
    }

    #[test]
    fn paper_example_ladder_matches_the_paper() {
        let ladder = DopingLadder::paper_example();
        assert_eq!(ladder.level_count(), 3);
        assert_eq!(ladder.threshold(0).unwrap().value(), 0.1);
        assert_eq!(ladder.threshold(1).unwrap().value(), 0.3);
        assert_eq!(ladder.threshold(2).unwrap().value(), 0.5);
        assert_eq!(ladder.doping(0).unwrap().in_1e18(), 2.0);
        assert_eq!(ladder.doping(1).unwrap().in_1e18(), 4.0);
        assert_eq!(ladder.doping(2).unwrap().in_1e18(), 9.0);
        assert!(ladder.level(3).is_err());
        // h is invertible on the ladder.
        for digit in 0..3u8 {
            let doping = ladder.doping(digit).unwrap();
            assert_eq!(ladder.digit_for_doping(doping), digit);
        }
        assert!((ladder.window_half_width().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn explicit_ladder_must_be_strictly_increasing() {
        let bad_threshold = DopingLadder::from_explicit(vec![
            DopingLevel {
                threshold: Volts::new(0.3),
                doping: DopantConcentration::from_1e18(2.0),
            },
            DopingLevel {
                threshold: Volts::new(0.1),
                doping: DopantConcentration::from_1e18(4.0),
            },
        ]);
        assert!(bad_threshold.is_err());
        let bad_doping = DopingLadder::from_explicit(vec![
            DopingLevel {
                threshold: Volts::new(0.1),
                doping: DopantConcentration::from_1e18(4.0),
            },
            DopingLevel {
                threshold: Volts::new(0.3),
                doping: DopantConcentration::from_1e18(2.0),
            },
        ]);
        assert!(bad_doping.is_err());
        assert!(DopingLadder::from_explicit(vec![]).is_err());
    }
}
