//! # device-physics
//!
//! Device-physics substrate for the MSPT nanowire-decoder reproduction: the
//! threshold-voltage ⇄ doping bijection of the paper's Proposition 1, the
//! Gaussian variability model of Definition 5, and the unit newtypes shared
//! by the rest of the workspace.
//!
//! The paper (ref. \[14\], Sze & Ng) only relies on two properties of the
//! doping → threshold function `f`: it is *monotone* and therefore
//! *bijective*. [`ThresholdModel`] implements the long-channel MOS threshold
//! equation, which has both properties, and [`DopingLadder`] packages the
//! digit → (V_T, N_D) table the fabrication model consumes — either derived
//! from the model or given explicitly (as in the paper's worked examples).
//!
//! # Examples
//!
//! ```
//! use device_physics::{DopingLadder, ThresholdModel, VariabilityModel, Volts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four logic levels spread over the 0..1 V supply range.
//! let model = ThresholdModel::default_mspt();
//! let ladder = DopingLadder::from_model(&model, 4, (Volts::new(0.0), Volts::new(1.0)))?;
//! assert_eq!(ladder.level_count(), 4);
//!
//! // After three doping operations a region's threshold has spread
//! // σ_T·sqrt(3) ≈ 87 mV.
//! let variability = VariabilityModel::paper_default();
//! assert!((variability.sigma_after_doses(3).millivolts() - 86.6).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod gaussian;
pub mod materials;
mod threshold;
mod units;
mod variability;

pub use error::{PhysicsError, Result};
pub use gaussian::{erf, erfc, standard_normal_cdf, Gaussian};
pub use threshold::{DopingLadder, DopingLevel, ThresholdModel};
pub use units::{AreaNm2, DopantConcentration, Nanometers, Volts};
pub use variability::{combine_std_devs, VariabilityModel};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThresholdModel>();
        assert_send_sync::<DopingLadder>();
        assert_send_sync::<VariabilityModel>();
        assert_send_sync::<Gaussian>();
        assert_send_sync::<PhysicsError>();
    }

    #[test]
    fn ladder_and_variability_compose_for_a_binary_decoder() {
        let model = ThresholdModel::default_mspt();
        let ladder =
            DopingLadder::from_model(&model, 2, (Volts::new(0.0), Volts::new(1.0))).unwrap();
        let variability = VariabilityModel::paper_default();
        // Binary levels at 0.25 V and 0.75 V, window half-width 0.25 V.
        let window = ladder.window_half_width();
        assert!((window.value() - 0.25).abs() < 1e-9);
        // Even after 10 doses the in-window probability stays above 88 %.
        let p = variability.in_window_probability(10, window).unwrap();
        assert!(p > 0.88 && p < 1.0);
    }
}
