//! Physical constants and material parameters of the standard CMOS material
//! system (silicon body, SiO₂ gate dielectric, poly-Si gate) used by the
//! threshold-voltage model.
//!
//! Values follow Sze & Ng, *Physics of Semiconductor Devices* (the paper's
//! ref. \[14\]) at room temperature.

/// Elementary charge in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Vacuum permittivity in F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;

/// Relative permittivity of crystalline / poly-crystalline silicon.
pub const SILICON_RELATIVE_PERMITTIVITY: f64 = 11.7;

/// Relative permittivity of thermally grown SiO₂.
pub const OXIDE_RELATIVE_PERMITTIVITY: f64 = 3.9;

/// Intrinsic carrier concentration of silicon at 300 K, in cm⁻³.
pub const INTRINSIC_CARRIER_CONCENTRATION: f64 = 1.45e10;

/// Thermal voltage kT/q at 300 K, in volts.
pub const THERMAL_VOLTAGE_300K: f64 = 0.025_852;

/// Absolute permittivity of silicon in F/m.
#[must_use]
pub fn silicon_permittivity() -> f64 {
    SILICON_RELATIVE_PERMITTIVITY * VACUUM_PERMITTIVITY
}

/// Absolute permittivity of SiO₂ in F/m.
#[must_use]
pub fn oxide_permittivity() -> f64 {
    OXIDE_RELATIVE_PERMITTIVITY * VACUUM_PERMITTIVITY
}

/// Gate-oxide capacitance per unit area (F/m²) for an oxide thickness given
/// in nanometres.
///
/// # Panics
///
/// Does not panic; callers validate the thickness (the threshold model
/// rejects non-positive thicknesses before calling this).
#[must_use]
pub fn oxide_capacitance_per_area(oxide_thickness_nm: f64) -> f64 {
    oxide_permittivity() / (oxide_thickness_nm * 1e-9)
}

/// Bulk Fermi potential ψ_B (volts) of p-type silicon with acceptor
/// concentration `na_cm3` (cm⁻³) at 300 K: `ψ_B = (kT/q)·ln(N_A / n_i)`.
#[must_use]
pub fn bulk_potential(na_cm3: f64) -> f64 {
    THERMAL_VOLTAGE_300K * (na_cm3 / INTRINSIC_CARRIER_CONCENTRATION).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permittivities_are_in_expected_range() {
        assert!((silicon_permittivity() - 1.036e-10).abs() / 1.036e-10 < 0.01);
        assert!((oxide_permittivity() - 3.45e-11).abs() / 3.45e-11 < 0.01);
    }

    #[test]
    fn oxide_capacitance_scales_inversely_with_thickness() {
        let c2 = oxide_capacitance_per_area(2.0);
        let c4 = oxide_capacitance_per_area(4.0);
        assert!((c2 / c4 - 2.0).abs() < 1e-9);
        // ~1.7e-2 F/m^2 for 2 nm oxide.
        assert!((c2 - 1.726e-2).abs() / 1.726e-2 < 0.01);
    }

    #[test]
    fn bulk_potential_grows_logarithmically_with_doping() {
        let psi_1e18 = bulk_potential(1e18);
        let psi_1e19 = bulk_potential(1e19);
        assert!(psi_1e18 > 0.4 && psi_1e18 < 0.5);
        assert!(psi_1e19 > psi_1e18);
        // One decade of doping adds kT/q * ln(10) ≈ 59.5 mV.
        assert!(((psi_1e19 - psi_1e18) - THERMAL_VOLTAGE_300K * 10f64.ln()).abs() < 1e-9);
    }
}
