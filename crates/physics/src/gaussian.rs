//! Gaussian statistics used by the yield model: error function, normal CDF
//! and in-window probabilities.
//!
//! The paper models every doping operation as adding an independent Gaussian
//! disturbance to the threshold voltage (Definition 5); a nanowire is
//! addressable only if every region's threshold stays inside its decision
//! window. These helpers compute that probability analytically so the yield
//! simulation does not need a Monte-Carlo pass (though `decoder-sim` provides
//! one for cross-validation).

use crate::error::{PhysicsError, Result};

/// Error function `erf(x)`, computed with the Abramowitz & Stegun 7.1.26
/// rational approximation (absolute error below 1.5 × 10⁻⁷, ample for yield
/// estimates dominated by model uncertainty).
#[must_use]
pub fn erf(x: f64) -> f64 {
    // erf(-x) = -erf(x)
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(z)`.
#[must_use]
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// A Gaussian (normal) distribution described by its mean and standard
/// deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidDistribution`] when the standard
    /// deviation is negative or not finite, or the mean is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(PhysicsError::InvalidDistribution {
                reason: format!("mean {mean}, std dev {std_dev}"),
            });
        }
        Ok(Gaussian { mean, std_dev })
    }

    /// The mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// The variance of the distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    /// Cumulative distribution function at `x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        standard_normal_cdf((x - self.mean) / self.std_dev)
    }

    /// Probability that a sample falls inside the closed interval
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidDistribution`] when `lo > hi`.
    pub fn probability_within(&self, lo: f64, hi: f64) -> Result<f64> {
        if lo > hi {
            return Err(PhysicsError::InvalidDistribution {
                reason: format!("empty interval [{lo}, {hi}]"),
            });
        }
        if self.std_dev == 0.0 {
            // Point mass at the mean: the closed interval either contains it
            // or it does not.
            return Ok(if (lo..=hi).contains(&self.mean) {
                1.0
            } else {
                0.0
            });
        }
        Ok((self.cdf(hi) - self.cdf(lo)).clamp(0.0, 1.0))
    }

    /// Probability that a sample deviates from the mean by at most
    /// `half_width` in either direction.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidDistribution`] when `half_width` is
    /// negative.
    pub fn probability_within_window(&self, half_width: f64) -> Result<f64> {
        if half_width < 0.0 {
            return Err(PhysicsError::InvalidDistribution {
                reason: format!("negative window half-width {half_width}"),
            });
        }
        self.probability_within(self.mean - half_width, self.mean + half_width)
    }

    /// The sum of two independent Gaussians: means add, variances add.
    #[must_use]
    pub fn convolve(&self, other: &Gaussian) -> Gaussian {
        Gaussian {
            mean: self.mean + other.mean,
            std_dev: (self.variance() + other.variance()).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_88),
            (1.0, 0.842_700_79),
            (1.5, 0.966_105_15),
            (2.0, 0.995_322_27),
            (3.0, 0.999_977_91),
        ];
        for (x, expected) in cases {
            assert!((erf(x) - expected).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + expected).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_is_complementary() {
        for x in [-2.0, -0.5, 0.0, 0.7, 2.3] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_normal_cdf_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((standard_normal_cdf(-1.959_964) - 0.025).abs() < 1e-4);
        assert!(standard_normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn gaussian_construction_validates() {
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(0.0, f64::INFINITY).is_err());
        let g = Gaussian::new(0.5, 0.05).unwrap();
        assert_eq!(g.mean(), 0.5);
        assert_eq!(g.std_dev(), 0.05);
        assert!((g.variance() - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn window_probabilities() {
        let g = Gaussian::new(0.25, 0.05).unwrap();
        // One sigma each side ≈ 68.3 %.
        let one_sigma = g.probability_within_window(0.05).unwrap();
        assert!((one_sigma - 0.6827).abs() < 1e-3);
        // Five sigma each side is essentially certain.
        assert!(g.probability_within_window(0.25).unwrap() > 0.999_999);
        // Zero window has zero probability (continuous distribution).
        assert!(g.probability_within_window(0.0).unwrap() < 1e-12);
        assert!(g.probability_within_window(-0.1).is_err());
    }

    #[test]
    fn degenerate_distribution_is_a_point_mass() {
        let g = Gaussian::new(0.3, 0.0).unwrap();
        assert_eq!(g.cdf(0.2), 0.0);
        assert_eq!(g.cdf(0.3), 1.0);
        assert_eq!(g.probability_within(0.25, 0.35).unwrap(), 1.0);
        assert_eq!(g.probability_within(0.31, 0.35).unwrap(), 0.0);
        assert_eq!(g.probability_within_window(0.0).unwrap(), 1.0);
    }

    #[test]
    fn interval_validation() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        assert!(g.probability_within(1.0, -1.0).is_err());
        let p = g.probability_within(-1.0, 1.0).unwrap();
        assert!((p - 0.6827).abs() < 1e-3);
    }

    #[test]
    fn convolution_adds_variances() {
        let a = Gaussian::new(0.1, 0.03).unwrap();
        let b = Gaussian::new(0.2, 0.04).unwrap();
        let c = a.convolve(&b);
        assert!((c.mean() - 0.3).abs() < 1e-12);
        assert!((c.std_dev() - 0.05).abs() < 1e-12);
    }
}
