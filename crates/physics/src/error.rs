//! Error types for the `device-physics` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the device-physics models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhysicsError {
    /// A model parameter is outside its physical range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The requested threshold voltage cannot be reached by any doping level
    /// within the solver bounds.
    ThresholdOutOfRange {
        /// The requested threshold voltage in volts.
        requested_volts: f64,
        /// Lowest reachable threshold in volts.
        min_volts: f64,
        /// Highest reachable threshold in volts.
        max_volts: f64,
    },
    /// The numeric solver failed to converge.
    SolverDidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A voltage ladder was requested with fewer than two levels or with a
    /// degenerate voltage range.
    InvalidLadder {
        /// Human-readable reason.
        reason: String,
    },
    /// A ladder lookup used a digit that has no level.
    LevelOutOfRange {
        /// Offending digit.
        digit: u8,
        /// Number of levels in the ladder.
        levels: usize,
    },
    /// A probability computation received an invalid interval or deviation.
    InvalidDistribution {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PhysicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            PhysicsError::ThresholdOutOfRange {
                requested_volts,
                min_volts,
                max_volts,
            } => write!(
                f,
                "threshold voltage {requested_volts} V outside the reachable range [{min_volts}, {max_volts}] V"
            ),
            PhysicsError::SolverDidNotConverge { iterations } => {
                write!(f, "doping solver did not converge after {iterations} iterations")
            }
            PhysicsError::InvalidLadder { reason } => write!(f, "invalid voltage ladder: {reason}"),
            PhysicsError::LevelOutOfRange { digit, levels } => {
                write!(f, "digit {digit} has no level in a ladder of {levels} levels")
            }
            PhysicsError::InvalidDistribution { reason } => {
                write!(f, "invalid distribution: {reason}")
            }
        }
    }
}

impl Error for PhysicsError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PhysicsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let samples: Vec<PhysicsError> = vec![
            PhysicsError::InvalidParameter {
                name: "oxide_thickness",
                value: -1.0,
                constraint: "must be positive",
            },
            PhysicsError::ThresholdOutOfRange {
                requested_volts: 5.0,
                min_volts: 0.0,
                max_volts: 2.0,
            },
            PhysicsError::SolverDidNotConverge { iterations: 128 },
            PhysicsError::InvalidLadder {
                reason: "needs at least two levels".to_string(),
            },
            PhysicsError::LevelOutOfRange {
                digit: 4,
                levels: 3,
            },
            PhysicsError::InvalidDistribution {
                reason: "negative standard deviation".to_string(),
            },
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhysicsError>();
    }
}
