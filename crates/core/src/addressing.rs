//! The address map of a decoder design: which code word identifies each
//! nanowire of a contact group, and which mesowire voltages must be applied
//! to select it (Fig. 1.c of the paper).

use serde::{Deserialize, Serialize};

use crossbar_array::{apply_address, AddressOutcome};
use device_physics::Volts;
use nanowire_codes::CodeWord;

use crate::design::DecoderDesign;
use crate::error::{DecoderError, Result};

/// The applied-voltage assignment that selects one nanowire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressAssignment {
    /// The nanowire's position within its contact group.
    pub position: usize,
    /// The code word identifying the nanowire.
    pub word: CodeWord,
    /// The voltage to apply on each mesowire (one per doping region).
    pub voltages: Vec<Volts>,
}

/// The address map of one contact group of a decoder design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressMap {
    assignments: Vec<AddressAssignment>,
    applied_levels: Vec<Volts>,
}

impl AddressMap {
    /// Builds the address map of one contact group of a design.
    ///
    /// The applied voltage for digit value `d` is placed halfway between the
    /// threshold of level `d` and the threshold of level `d + 1` (or half a
    /// level separation above the top level), so that a region with level
    /// `≤ d` conducts and a region with level `> d` does not.
    ///
    /// # Errors
    ///
    /// Propagates code and device-physics errors.
    pub fn for_design(design: &DecoderDesign) -> Result<Self> {
        let sequence = design.code_sequence()?;
        let ladder = design.config().doping_ladder()?;
        let levels = ladder.levels();
        let separation = if levels.len() >= 2 {
            levels[1].threshold.value() - levels[0].threshold.value()
        } else {
            0.5
        };
        // Applied level for digit d: midway to the next threshold level.
        let applied_levels: Vec<Volts> = (0..levels.len())
            .map(|d| {
                if d + 1 < levels.len() {
                    Volts::new(
                        0.5 * (levels[d].threshold.value() + levels[d + 1].threshold.value()),
                    )
                } else {
                    Volts::new(levels[d].threshold.value() + 0.5 * separation)
                }
            })
            .collect();

        let assignments = sequence
            .iter()
            .enumerate()
            .map(|(position, word)| AddressAssignment {
                position,
                voltages: word
                    .digits()
                    .iter()
                    .map(|digit| applied_levels[usize::from(digit.value())])
                    .collect(),
                word: word.clone(),
            })
            .collect();
        Ok(AddressMap {
            assignments,
            applied_levels,
        })
    }

    /// The number of addressable nanowires in the group (the code-space
    /// size Ω).
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the map is empty (never true for a built map).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The applied voltage used for each digit value.
    #[must_use]
    pub fn applied_levels(&self) -> &[Volts] {
        &self.applied_levels
    }

    /// The assignment of a nanowire position within the group.
    ///
    /// # Errors
    ///
    /// Returns [`DecoderError::InvalidAddress`] when the position is outside
    /// the group.
    pub fn assignment(&self, position: usize) -> Result<&AddressAssignment> {
        self.assignments
            .get(position)
            .ok_or_else(|| DecoderError::InvalidAddress {
                reason: format!(
                    "position {position} outside a contact group of {} nanowires",
                    self.assignments.len()
                ),
            })
    }

    /// All assignments in position order.
    #[must_use]
    pub fn assignments(&self) -> &[AddressAssignment] {
        &self.assignments
    }

    /// Simulates applying the voltage pattern of `position` to the whole
    /// group and returns the position that conducts.
    ///
    /// # Errors
    ///
    /// * [`DecoderError::InvalidAddress`] when the position is outside the
    ///   group or the selection is not unique (which would indicate a broken
    ///   code assignment).
    pub fn select(&self, position: usize) -> Result<usize> {
        let target = self.assignment(position)?;
        let words: Vec<CodeWord> = self.assignments.iter().map(|a| a.word.clone()).collect();
        match apply_address(&words, &target.word).map_err(DecoderError::from)? {
            AddressOutcome::Unique(index) => Ok(index),
            AddressOutcome::None => Err(DecoderError::InvalidAddress {
                reason: format!("no nanowire conducts for position {position}"),
            }),
            AddressOutcome::Multiple(indices) => Err(DecoderError::InvalidAddress {
                reason: format!(
                    "positions {indices:?} all conduct for position {position}; the code is not an antichain"
                ),
            }),
        }
    }

    /// Checks that every position selects itself — the end-to-end unique
    /// addressing property of the design.
    ///
    /// # Errors
    ///
    /// Returns [`DecoderError::InvalidAddress`] naming the first position
    /// that fails.
    pub fn verify_unique_addressing(&self) -> Result<()> {
        for position in 0..self.assignments.len() {
            let selected = self.select(position)?;
            if selected != position {
                return Err(DecoderError::InvalidAddress {
                    reason: format!("position {position} selects {selected}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::CodeSelection;
    use nanowire_codes::LogicLevel;

    fn map_for(kind: CodeSelection, radix: LogicLevel, length: usize) -> AddressMap {
        let design = DecoderDesign::builder()
            .code(kind)
            .radix(radix)
            .code_length(length)
            .nanowires_per_half_cave(20)
            .build()
            .unwrap();
        AddressMap::for_design(&design).unwrap()
    }

    #[test]
    fn every_code_family_addresses_uniquely() {
        for (kind, length) in [
            (CodeSelection::Tree, 8),
            (CodeSelection::Gray, 8),
            (CodeSelection::BalancedGray, 8),
            (CodeSelection::Hot, 6),
            (CodeSelection::ArrangedHot, 6),
        ] {
            let map = map_for(kind, LogicLevel::BINARY, length);
            map.verify_unique_addressing().unwrap();
            assert!(!map.is_empty());
        }
    }

    #[test]
    fn applied_levels_sit_between_threshold_levels() {
        let map = map_for(CodeSelection::Gray, LogicLevel::TERNARY, 6);
        let levels = map.applied_levels();
        assert_eq!(levels.len(), 3);
        // Ternary thresholds sit at 1/6, 3/6, 5/6 V; applied levels halfway
        // between successive thresholds and above the top one.
        assert!(levels[0].value() > 1.0 / 6.0 && levels[0].value() < 0.5);
        assert!(levels[1].value() > 0.5 && levels[1].value() < 5.0 / 6.0);
        assert!(levels[2].value() > 5.0 / 6.0);
    }

    #[test]
    fn assignments_carry_one_voltage_per_region() {
        let map = map_for(CodeSelection::BalancedGray, LogicLevel::BINARY, 10);
        for assignment in map.assignments() {
            assert_eq!(assignment.voltages.len(), 10);
            assert_eq!(assignment.word.len(), 10);
        }
        assert_eq!(map.len(), 32);
        assert!(map.assignment(0).is_ok());
        assert!(map.assignment(99).is_err());
    }

    #[test]
    fn selection_resolves_to_the_requested_position() {
        let map = map_for(CodeSelection::ArrangedHot, LogicLevel::BINARY, 8);
        for position in [0, 7, map.len() - 1] {
            assert_eq!(map.select(position).unwrap(), position);
        }
        assert!(map.select(map.len()).is_err());
    }
}
