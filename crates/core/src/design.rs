//! The decoder design: the paper's contribution packaged as a single object —
//! pick a code family, a code length and a logic radix, and obtain the
//! fabrication recipe, the address map and the full evaluation of the
//! resulting MSPT nanowire decoder.

use serde::{Deserialize, Serialize};

use crossbar_array::LayoutRules;
use decoder_sim::{PlatformReport, SimConfig, SimulationPlatform};
use device_physics::{ThresholdModel, Volts};
use nanowire_codes::{CodeKind, CodeSequence, CodeSpec, LogicLevel};

use crate::error::{DecoderError, Result};

/// The code families available to the decoder designer.
///
/// This is a re-export of [`CodeKind`] under the name the design layer uses;
/// the paper's design space is exactly these five families.
pub type CodeSelection = CodeKind;

/// A fully specified MSPT nanowire-decoder design.
///
/// # Examples
///
/// ```
/// use mspt_decoder::{CodeSelection, DecoderDesign};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = DecoderDesign::builder()
///     .code(CodeSelection::BalancedGray)
///     .code_length(10)
///     .nanowires_per_half_cave(20)
///     .build()?;
/// let report = design.evaluate()?;
/// assert!(report.crossbar_yield > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderDesign {
    config: SimConfig,
}

impl DecoderDesign {
    /// Starts building a design with the paper's platform defaults.
    #[must_use]
    pub fn builder() -> DecoderDesignBuilder {
        DecoderDesignBuilder::default()
    }

    /// Wraps an explicit simulation configuration as a design.
    #[must_use]
    pub fn from_config(config: SimConfig) -> Self {
        DecoderDesign { config }
    }

    /// The code specification of the design.
    #[must_use]
    pub fn code(&self) -> CodeSpec {
        self.config.code()
    }

    /// The underlying simulation configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The simulation platform for this design.
    #[must_use]
    pub fn platform(&self) -> SimulationPlatform {
        SimulationPlatform::new(self.config.clone())
    }

    /// The ordered code sequence the design assigns to successive nanowires.
    ///
    /// # Errors
    ///
    /// Propagates code-generation errors.
    pub fn code_sequence(&self) -> Result<CodeSequence> {
        Ok(self.platform().code_sequence()?)
    }

    /// Evaluates the design: fabrication complexity, variability, yield and
    /// bit area on the paper's platform.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the simulation layer.
    pub fn evaluate(&self) -> Result<DesignReport> {
        let platform = self.platform();
        let report = platform.evaluate()?;
        let plan = crate::encode::DecoderRecipe::for_design(self)?;
        Ok(DesignReport {
            lithography_passes: plan.lithography_passes(),
            distinct_doses: plan.distinct_doses().len(),
            code: report.code,
            nanowires_per_half_cave: report.nanowires_per_half_cave,
            fabrication_steps: report.fabrication_steps,
            mean_variability: report.mean_variability,
            max_normalized_sigma: report.max_normalized_sigma,
            cave_yield: report.cave_yield,
            crossbar_yield: report.crossbar_yield,
            effective_bits: report.effective_bits,
            raw_bit_area: report.raw_bit_area,
            effective_bit_area: report.effective_bit_area,
            contact_groups: report.contact_groups,
        })
    }

    /// The raw platform report (the figure-level quantities without the
    /// recipe summary).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the simulation layer.
    pub fn platform_report(&self) -> Result<PlatformReport> {
        Ok(self.platform().evaluate()?)
    }
}

/// The evaluation of one decoder design: the quantities of the paper's
/// figures plus a summary of the fabrication recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// The evaluated code.
    pub code: CodeSpec,
    /// Nanowires per half cave.
    pub nanowires_per_half_cave: usize,
    /// Fabrication complexity `Φ`.
    pub fabrication_steps: usize,
    /// Number of lithography/doping passes of the concrete recipe (must equal
    /// `fabrication_steps`).
    pub lithography_passes: usize,
    /// Number of distinct implant doses the recipe uses.
    pub distinct_doses: usize,
    /// Average variability `‖Σ‖₁/(N·M)` in σ_T² units.
    pub mean_variability: f64,
    /// Largest normalised deviation `sqrt(ν)`.
    pub max_normalized_sigma: f64,
    /// Cave (nanowire) yield `Y`.
    pub cave_yield: f64,
    /// Crossbar yield `Y²`.
    pub crossbar_yield: f64,
    /// Effective density `D_RAW · Y²` in bits.
    pub effective_bits: f64,
    /// Raw area per crosspoint in nm².
    pub raw_bit_area: f64,
    /// Effective area per functional bit in nm².
    pub effective_bit_area: f64,
    /// Contact groups per half cave.
    pub contact_groups: usize,
}

/// Builder for [`DecoderDesign`], pre-loaded with the paper's platform
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderDesignBuilder {
    code_kind: CodeKind,
    radix: LogicLevel,
    code_length: usize,
    nanowires_per_half_cave: usize,
    raw_bits: u64,
    layout: LayoutRules,
    threshold_model: ThresholdModel,
    sigma_per_dose: Volts,
    supply_range: (Volts, Volts),
    window: Option<Volts>,
}

impl Default for DecoderDesignBuilder {
    fn default() -> Self {
        DecoderDesignBuilder {
            code_kind: CodeKind::BalancedGray,
            radix: LogicLevel::BINARY,
            code_length: 10,
            nanowires_per_half_cave: 20,
            raw_bits: crossbar_array::PAPER_RAW_BITS,
            layout: LayoutRules::paper_default(),
            threshold_model: ThresholdModel::default_mspt(),
            sigma_per_dose: Volts::from_millivolts(50.0),
            supply_range: (Volts::new(0.0), Volts::new(1.0)),
            window: None,
        }
    }
}

impl DecoderDesignBuilder {
    /// Selects the code family.
    #[must_use]
    pub fn code(mut self, kind: CodeSelection) -> Self {
        self.code_kind = kind;
        self
    }

    /// Selects the logic radix.
    #[must_use]
    pub fn radix(mut self, radix: LogicLevel) -> Self {
        self.radix = radix;
        self
    }

    /// Selects the code length `M` (doping regions per nanowire).
    #[must_use]
    pub fn code_length(mut self, code_length: usize) -> Self {
        self.code_length = code_length;
        self
    }

    /// Sets the number of nanowires per half cave.
    #[must_use]
    pub fn nanowires_per_half_cave(mut self, nanowires: usize) -> Self {
        self.nanowires_per_half_cave = nanowires;
        self
    }

    /// Sets the raw crossbar capacity in bits.
    #[must_use]
    pub fn raw_bits(mut self, raw_bits: u64) -> Self {
        self.raw_bits = raw_bits;
        self
    }

    /// Sets the layout rules.
    #[must_use]
    pub fn layout(mut self, layout: LayoutRules) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the threshold-voltage model.
    #[must_use]
    pub fn threshold_model(mut self, model: ThresholdModel) -> Self {
        self.threshold_model = model;
        self
    }

    /// Sets the per-dose threshold deviation σ_T.
    #[must_use]
    pub fn sigma_per_dose(mut self, sigma: Volts) -> Self {
        self.sigma_per_dose = sigma;
        self
    }

    /// Sets the supply-voltage range over which threshold levels are spread.
    #[must_use]
    pub fn supply_range(mut self, low: Volts, high: Volts) -> Self {
        self.supply_range = (low, high);
        self
    }

    /// Overrides the addressability decision window.
    #[must_use]
    pub fn decision_window(mut self, window: Volts) -> Self {
        self.window = Some(window);
        self
    }

    /// Validates the parameters and builds the design.
    ///
    /// # Errors
    ///
    /// Returns [`DecoderError::InvalidDesign`] (or a wrapped lower-layer
    /// error) when the code length is incompatible with the family/radix or
    /// any platform parameter is invalid.
    pub fn build(self) -> Result<DecoderDesign> {
        let code = CodeSpec::new(self.code_kind, self.radix, self.code_length).map_err(|err| {
            DecoderError::InvalidDesign {
                reason: format!(
                    "code length {} is invalid for {} over {}: {err}",
                    self.code_length, self.code_kind, self.radix
                ),
            }
        })?;
        let mut config = SimConfig::new(
            code,
            self.nanowires_per_half_cave,
            self.raw_bits,
            self.layout,
            self.threshold_model,
            self.sigma_per_dose,
            self.supply_range,
        )?;
        if let Some(window) = self.window {
            config = config.with_window(window);
        }
        Ok(DecoderDesign { config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_paper_platform() {
        let design = DecoderDesign::builder().build().unwrap();
        assert_eq!(design.code().kind(), CodeKind::BalancedGray);
        assert_eq!(design.code().code_length(), 10);
        assert_eq!(design.config().nanowires_per_half_cave(), 20);
        assert_eq!(design.config().raw_bits(), 131_072);
    }

    #[test]
    fn builder_rejects_incompatible_code_lengths() {
        let odd = DecoderDesign::builder()
            .code(CodeSelection::Gray)
            .code_length(7)
            .build();
        assert!(matches!(odd, Err(DecoderError::InvalidDesign { .. })));
        let bad_hot = DecoderDesign::builder()
            .code(CodeSelection::Hot)
            .radix(LogicLevel::TERNARY)
            .code_length(7)
            .build();
        assert!(bad_hot.is_err());
        let zero_nanowires = DecoderDesign::builder().nanowires_per_half_cave(0).build();
        assert!(zero_nanowires.is_err());
    }

    #[test]
    fn evaluation_report_is_internally_consistent() {
        let design = DecoderDesign::builder()
            .code(CodeSelection::Gray)
            .code_length(8)
            .nanowires_per_half_cave(20)
            .build()
            .unwrap();
        let report = design.evaluate().unwrap();
        assert_eq!(report.lithography_passes, report.fabrication_steps);
        assert!(report.distinct_doses >= 1);
        assert!((report.crossbar_yield - report.cave_yield.powi(2)).abs() < 1e-12);
        assert!(report.effective_bit_area >= report.raw_bit_area);
        assert_eq!(report.nanowires_per_half_cave, 20);
    }

    #[test]
    fn builder_setters_apply() {
        let design = DecoderDesign::builder()
            .code(CodeSelection::Hot)
            .radix(LogicLevel::TERNARY)
            .code_length(6)
            .nanowires_per_half_cave(30)
            .raw_bits(65_536)
            .sigma_per_dose(Volts::from_millivolts(30.0))
            .supply_range(Volts::new(0.0), Volts::new(0.9))
            .decision_window(Volts::new(0.12))
            .build()
            .unwrap();
        assert_eq!(design.code().kind(), CodeKind::Hot);
        assert_eq!(design.code().radix(), LogicLevel::TERNARY);
        assert_eq!(design.config().raw_bits(), 65_536);
        assert_eq!(
            design.config().sigma_per_dose(),
            Volts::from_millivolts(30.0)
        );
        assert_eq!(design.config().decision_window().unwrap(), Volts::new(0.12));
    }

    #[test]
    fn from_config_roundtrips() {
        let design = DecoderDesign::builder().build().unwrap();
        let clone = DecoderDesign::from_config(design.config().clone());
        assert_eq!(design, clone);
        assert_eq!(
            design.code_sequence().unwrap().word_length(),
            design.code().code_length()
        );
        let platform_report = design.platform_report().unwrap();
        assert!(platform_report.crossbar_yield > 0.0);
    }
}
