//! # mspt-decoder
//!
//! The decoder design style for MSPT-fabricated nanowire crossbar arrays —
//! the primary contribution of *"Decoding Nanowire Arrays Fabricated with the
//! Multi-Spacer Patterning Technique"* (DAC 2009) as a library.
//!
//! A [`DecoderDesign`] bundles the three decisions the paper identifies:
//!
//! 1. **Code family** ([`CodeSelection`]) — tree, Gray, balanced Gray, hot or
//!    arranged hot codes. The Gray-style arrangements minimise both the
//!    fabrication complexity `Φ` and the accumulated variability `‖Σ‖₁`
//!    (Propositions 4 and 5), which [`verify_gray_arrangement_optimality`]
//!    checks empirically.
//! 2. **Code length `M`** — longer codes need fewer contact groups (less
//!    boundary loss) but more doping regions; the sweet spot is found by
//!    [`optimize`] / [`best_bit_area_design`].
//! 3. **Logic radix** — binary through quaternary threshold levels.
//!
//! From a design you can obtain the concrete fabrication recipe
//! ([`DecoderRecipe`]), the mesowire address map ([`AddressMap`]) and the full
//! evaluation on the paper's simulation platform ([`DesignReport`]).
//!
//! # Examples
//!
//! ```
//! use mspt_decoder::{CodeSelection, DecoderDesign, DecoderRecipe};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = DecoderDesign::builder()
//!     .code(CodeSelection::BalancedGray)
//!     .code_length(10)
//!     .build()?;
//!
//! // Evaluate the design on the 16 kB crossbar platform of the paper.
//! let report = design.evaluate()?;
//! assert!(report.crossbar_yield > 0.3);
//!
//! // The fabrication recipe: every lithography/implantation pass, in order.
//! let recipe = DecoderRecipe::for_design(&design)?;
//! assert_eq!(recipe.lithography_passes(), report.fabrication_steps);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addressing;
mod design;
mod encode;
mod error;
mod optimize;

pub use addressing::{AddressAssignment, AddressMap};
pub use design::{CodeSelection, DecoderDesign, DecoderDesignBuilder, DesignReport};
pub use encode::DecoderRecipe;
pub use error::{DecoderError, Result};
pub use optimize::{
    best_bit_area_design, optimize, verify_gray_arrangement_optimality, DesignSpace, Objective,
    OptimizationOutcome, RankedDesign,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecoderDesign>();
        assert_send_sync::<DecoderDesignBuilder>();
        assert_send_sync::<DesignReport>();
        assert_send_sync::<DecoderRecipe>();
        assert_send_sync::<AddressMap>();
        assert_send_sync::<DesignSpace>();
        assert_send_sync::<DecoderError>();
    }

    #[test]
    fn end_to_end_design_flow() {
        let design = DecoderDesign::builder()
            .code(CodeSelection::ArrangedHot)
            .code_length(6)
            .nanowires_per_half_cave(20)
            .build()
            .unwrap();
        let report = design.evaluate().unwrap();
        let recipe = DecoderRecipe::for_design(&design).unwrap();
        let map = AddressMap::for_design(&design).unwrap();
        assert_eq!(recipe.lithography_passes(), report.fabrication_steps);
        map.verify_unique_addressing().unwrap();
    }
}
