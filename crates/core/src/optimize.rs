//! Design-space exploration: Section 5 of the paper proves which code
//! *arrangement* is optimal (the Gray arrangement, Propositions 4 and 5);
//! Section 6 then picks the code *type and length* by simulation. This module
//! implements both steps: exhaustive evaluation of a declared design space
//! under a chosen objective, and empirical verification of the arrangement
//! optimality on small spaces.

use serde::{Deserialize, Serialize};

use decoder_sim::SimConfig;
use device_physics::DopingLadder;
use mspt_fabrication::{FabricationCost, PatternMatrix, VariabilityMatrix};
use nanowire_codes::{CodeKind, CodeSequence, CodeSpec, LogicLevel};

use crate::design::{DecoderDesign, DesignReport};
use crate::error::{DecoderError, Result};

/// The objective a design-space exploration optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise the fabrication complexity `Φ`.
    FabricationComplexity,
    /// Minimise the average variability `‖Σ‖₁ / (N·M)`.
    Variability,
    /// Maximise the crossbar yield `Y²`.
    CrossbarYield,
    /// Minimise the effective area per functional bit.
    BitArea,
}

/// The design space to explore: code families × code lengths at a fixed
/// radix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Code families to consider.
    pub kinds: Vec<CodeKind>,
    /// Code lengths to consider (invalid combinations are skipped).
    pub code_lengths: Vec<usize>,
    /// Logic radix.
    pub radix: LogicLevel,
}

impl DesignSpace {
    /// The design space the paper sweeps in Figs. 7 and 8: all five code
    /// families, binary logic, code lengths 4–10.
    #[must_use]
    pub fn paper_default() -> Self {
        DesignSpace {
            kinds: CodeKind::ALL.to_vec(),
            code_lengths: vec![4, 6, 8, 10],
            radix: LogicLevel::BINARY,
        }
    }
}

/// One evaluated candidate of a design-space exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedDesign {
    /// The candidate code.
    pub code: CodeSpec,
    /// The objective value (lower is better; yields are negated).
    pub objective_value: f64,
    /// The full evaluation report of the candidate.
    pub report: DesignReport,
}

/// The outcome of a design-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationOutcome {
    /// The best design found.
    pub best: DecoderDesign,
    /// All evaluated candidates, sorted from best to worst.
    pub ranked: Vec<RankedDesign>,
    /// The objective that was optimised.
    pub objective: Objective,
}

/// Explores a design space under an objective, starting from a base design
/// whose platform parameters (nanowires per half cave, σ_T, pitches, ...) are
/// kept fixed.
///
/// # Errors
///
/// * [`DecoderError::EmptyDesignSpace`] when the space contains no valid
///   candidate.
/// * Propagates evaluation errors.
pub fn optimize(
    base: &DecoderDesign,
    space: &DesignSpace,
    objective: Objective,
) -> Result<OptimizationOutcome> {
    let mut ranked: Vec<RankedDesign> = Vec::new();
    for &kind in &space.kinds {
        for &code_length in &space.code_lengths {
            let Ok(code) = CodeSpec::new(kind, space.radix, code_length) else {
                continue;
            };
            let config: SimConfig = base.config().clone().with_code(code);
            let candidate = DecoderDesign::from_config(config);
            let report = candidate.evaluate()?;
            let objective_value = objective_value(objective, &report);
            ranked.push(RankedDesign {
                code,
                objective_value,
                report,
            });
        }
    }
    if ranked.is_empty() {
        return Err(DecoderError::EmptyDesignSpace);
    }
    ranked.sort_by(|a, b| {
        a.objective_value
            .partial_cmp(&b.objective_value)
            .expect("finite objective values")
    });
    let best_code = ranked[0].code;
    let best = DecoderDesign::from_config(base.config().clone().with_code(best_code));
    Ok(OptimizationOutcome {
        best,
        ranked,
        objective,
    })
}

fn objective_value(objective: Objective, report: &DesignReport) -> f64 {
    match objective {
        Objective::FabricationComplexity => report.fabrication_steps as f64,
        Objective::Variability => report.mean_variability,
        // Negate so "lower is better" holds for every objective.
        Objective::CrossbarYield => -report.crossbar_yield,
        Objective::BitArea => report.effective_bit_area,
    }
}

/// Empirically verifies Propositions 4 and 5 on a small code space: the Gray
/// arrangement's fabrication complexity and variability are no worse than
/// those of `sample_count` random arrangements of the same words (plus the
/// lexicographic and reversed orders).
///
/// Returns the number of arrangements checked.
///
/// # Errors
///
/// Propagates code, fabrication and device-physics errors.
pub fn verify_gray_arrangement_optimality(
    radix: LogicLevel,
    code_length: usize,
    ladder: &DopingLadder,
    sample_count: usize,
    seed: u64,
) -> Result<usize> {
    let gray = CodeSpec::new(CodeKind::Gray, radix, code_length)?.generate()?;
    let tree = CodeSpec::new(CodeKind::Tree, radix, code_length)?.generate()?;
    let gray_cost = cost_pair(&gray, ladder)?;

    let mut checked = 0usize;
    let mut verify = |sequence: &CodeSequence| -> Result<()> {
        let candidate_cost = cost_pair(sequence, ladder)?;
        if candidate_cost.0 < gray_cost.0 || candidate_cost.1 < gray_cost.1 {
            return Err(DecoderError::InvalidDesign {
                reason: format!(
                    "arrangement beats the Gray code: Φ {} vs {}, ‖Σ‖ {} vs {}",
                    candidate_cost.0, gray_cost.0, candidate_cost.1, gray_cost.1
                ),
            });
        }
        checked += 1;
        Ok(())
    };

    verify(&tree)?;
    verify(&tree.reversed())?;

    // Deterministic pseudo-random permutations of the tree-code words.
    let mut state = seed.max(1);
    let words = tree.words().to_vec();
    for _ in 0..sample_count {
        let mut shuffled = words.clone();
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        verify(&CodeSequence::new(shuffled)?)?;
    }
    Ok(checked)
}

fn cost_pair(sequence: &CodeSequence, ladder: &DopingLadder) -> Result<(usize, usize)> {
    let pattern = PatternMatrix::from_sequence(sequence)?;
    let cost = FabricationCost::from_pattern(&pattern, ladder)?;
    let variability = VariabilityMatrix::from_pattern(
        &pattern,
        ladder,
        &device_physics::VariabilityModel::paper_default(),
    )?;
    Ok((cost.total(), variability.l1_norm_in_sigma_units()))
}

/// Convenience: run the paper's headline optimisation — minimise the bit area
/// over the full binary design space — and return the winning design.
///
/// # Errors
///
/// Propagates exploration errors.
pub fn best_bit_area_design(base: &DecoderDesign) -> Result<OptimizationOutcome> {
    optimize(base, &DesignSpace::paper_default(), Objective::BitArea)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::CodeSelection;

    fn base() -> DecoderDesign {
        DecoderDesign::builder()
            .code(CodeSelection::Tree)
            .code_length(8)
            .nanowires_per_half_cave(20)
            .build()
            .unwrap()
    }

    #[test]
    fn optimisation_ranks_candidates_and_picks_the_best() {
        let space = DesignSpace {
            kinds: vec![CodeKind::Tree, CodeKind::Gray, CodeKind::BalancedGray],
            code_lengths: vec![6, 8, 10],
            radix: LogicLevel::BINARY,
        };
        let outcome = optimize(&base(), &space, Objective::CrossbarYield).unwrap();
        assert_eq!(outcome.ranked.len(), 9);
        assert_eq!(outcome.objective, Objective::CrossbarYield);
        // Ranked from best to worst.
        for pair in outcome.ranked.windows(2) {
            assert!(pair[0].objective_value <= pair[1].objective_value);
        }
        // The winner is never the plain tree code at the shortest length.
        let best = outcome.best.code();
        assert!(!(best.kind() == CodeKind::Tree && best.code_length() == 6));
        // The best design's yield matches the best ranked report.
        assert!(
            (outcome.best.evaluate().unwrap().crossbar_yield
                - outcome.ranked[0].report.crossbar_yield)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn variability_objective_prefers_gray_arrangements() {
        let space = DesignSpace {
            kinds: vec![CodeKind::Tree, CodeKind::Gray],
            code_lengths: vec![8],
            radix: LogicLevel::BINARY,
        };
        let outcome = optimize(&base(), &space, Objective::Variability).unwrap();
        assert_eq!(outcome.best.code().kind(), CodeKind::Gray);
        let complexity = optimize(&base(), &space, Objective::FabricationComplexity).unwrap();
        // Binary complexity is identical (2N) for both, so either may win;
        // the ranking must still be complete.
        assert_eq!(complexity.ranked.len(), 2);
    }

    #[test]
    fn empty_design_space_is_rejected() {
        let space = DesignSpace {
            kinds: vec![CodeKind::Hot],
            code_lengths: vec![5, 7], // invalid for binary hot codes
            radix: LogicLevel::BINARY,
        };
        assert!(matches!(
            optimize(&base(), &space, Objective::BitArea),
            Err(DecoderError::EmptyDesignSpace)
        ));
    }

    #[test]
    fn paper_design_space_has_every_family() {
        let space = DesignSpace::paper_default();
        assert_eq!(space.kinds.len(), 5);
        assert_eq!(space.radix, LogicLevel::BINARY);
    }

    #[test]
    fn gray_arrangement_optimality_holds_on_small_spaces() {
        let ladder = DopingLadder::paper_example();
        for radix in [LogicLevel::BINARY, LogicLevel::TERNARY] {
            let checked =
                verify_gray_arrangement_optimality(radix, 4, &ladder, 50, 0xfeed).unwrap();
            assert_eq!(checked, 52);
        }
    }

    #[test]
    fn best_bit_area_design_prefers_long_optimised_codes() {
        let outcome = best_bit_area_design(&base()).unwrap();
        let best = outcome.best.code();
        // Fig. 8: the winners are the optimised codes at generous lengths,
        // never the short tree code.
        assert!(best.code_length() >= 6);
        assert!(
            outcome.ranked[0].report.effective_bit_area
                < outcome.ranked.last().unwrap().report.effective_bit_area
        );
    }
}
