//! The fabrication recipe of a decoder design: the concrete, ordered list of
//! MSPT process events (spacer definitions and lithography/implantation
//! passes with their doses) that realises the chosen encoding, plus summary
//! statistics a process engineer would ask for.

use serde::{Deserialize, Serialize};

use device_physics::DopantConcentration;
use mspt_fabrication::{FabricationCost, FabricationPlan, PatternMatrix, ProcessEvent};

use crate::design::DecoderDesign;
use crate::error::Result;

/// The concrete fabrication recipe of one decoder design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderRecipe {
    plan: FabricationPlan,
    cost: FabricationCost,
    distinct_doses: Vec<f64>,
}

impl DecoderRecipe {
    /// Builds the recipe for a design: generates the code, assigns it to the
    /// half cave, derives the step doses and lays out the process events.
    ///
    /// # Errors
    ///
    /// Propagates code, fabrication and device-physics errors.
    pub fn for_design(design: &DecoderDesign) -> Result<Self> {
        let platform = design.platform();
        let half_cave = platform.half_cave()?;
        let pattern = half_cave.pattern()?;
        let ladder = design.config().doping_ladder()?;
        let plan = FabricationPlan::for_pattern(&pattern, &ladder)?;
        let cost = FabricationCost::from_pattern(&pattern, &ladder)?;
        let distinct_doses = collect_distinct_doses(&plan);
        Ok(DecoderRecipe {
            plan,
            cost,
            distinct_doses,
        })
    }

    /// Builds the recipe for an explicit pattern matrix (e.g. a hand-crafted
    /// prototype cave) using the design's doping ladder.
    ///
    /// # Errors
    ///
    /// Propagates fabrication and device-physics errors.
    pub fn for_pattern(design: &DecoderDesign, pattern: &PatternMatrix) -> Result<Self> {
        let ladder = design.config().doping_ladder()?;
        let plan = FabricationPlan::for_pattern(pattern, &ladder)?;
        let cost = FabricationCost::from_pattern(pattern, &ladder)?;
        let distinct_doses = collect_distinct_doses(&plan);
        Ok(DecoderRecipe {
            plan,
            cost,
            distinct_doses,
        })
    }

    /// The ordered process events of the recipe.
    #[must_use]
    pub fn plan(&self) -> &FabricationPlan {
        &self.plan
    }

    /// The per-step and total lithography/doping cost.
    #[must_use]
    pub fn cost(&self) -> &FabricationCost {
        &self.cost
    }

    /// Total number of lithography/implantation passes of the recipe (`Φ`).
    #[must_use]
    pub fn lithography_passes(&self) -> usize {
        self.plan.lithography_pass_count()
    }

    /// The distinct implant doses the recipe uses, in cm⁻³ (signed).
    ///
    /// A small dose menu is desirable in practice: every distinct dose needs
    /// its own implanter setup and qualification.
    #[must_use]
    pub fn distinct_doses(&self) -> &[f64] {
        &self.distinct_doses
    }

    /// The distinct implant doses as typed concentrations.
    #[must_use]
    pub fn distinct_doses_typed(&self) -> Vec<DopantConcentration> {
        self.distinct_doses
            .iter()
            .map(|&d| DopantConcentration::new(d))
            .collect()
    }

    /// The largest dose magnitude of the recipe — nanowires are fragile and
    /// the paper stresses that they should be doped with light doses.
    #[must_use]
    pub fn max_dose_magnitude(&self) -> f64 {
        self.distinct_doses
            .iter()
            .fold(0.0f64, |acc, &d| acc.max(d.abs()))
    }
}

fn collect_distinct_doses(plan: &FabricationPlan) -> Vec<f64> {
    let mut doses: Vec<f64> = Vec::new();
    for event in plan.events() {
        if let ProcessEvent::LithographyDoping { dose, .. } = event {
            if !doses
                .iter()
                .any(|&d| (d - dose).abs() <= 1e-9 * dose.abs().max(1.0))
            {
                doses.push(*dose);
            }
        }
    }
    doses.sort_by(|a, b| a.partial_cmp(b).expect("finite doses"));
    doses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::CodeSelection;
    use nanowire_codes::LogicLevel;

    fn design() -> DecoderDesign {
        DecoderDesign::builder()
            .code(CodeSelection::Gray)
            .code_length(8)
            .nanowires_per_half_cave(16)
            .build()
            .unwrap()
    }

    #[test]
    fn recipe_matches_the_fabrication_cost() {
        let design = design();
        let recipe = DecoderRecipe::for_design(&design).unwrap();
        assert_eq!(recipe.lithography_passes(), recipe.cost().total());
        assert_eq!(recipe.plan().nanowire_count(), 16);
        assert_eq!(recipe.plan().region_count(), 8);
        assert!(!recipe.distinct_doses().is_empty());
        assert!(recipe.max_dose_magnitude() > 0.0);
        assert_eq!(
            recipe.distinct_doses_typed().len(),
            recipe.distinct_doses().len()
        );
    }

    #[test]
    fn binary_recipes_use_a_small_dose_menu() {
        // For binary codes the dose menu is tiny: ±(N_D(1) − N_D(0)) plus the
        // two absolute levels of the last spacer's patterning.
        let recipe = DecoderRecipe::for_design(&design()).unwrap();
        assert!(recipe.distinct_doses().len() <= 4);
    }

    #[test]
    fn doses_are_sorted_and_distinct() {
        let recipe = DecoderRecipe::for_design(&design()).unwrap();
        let doses = recipe.distinct_doses();
        for pair in doses.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn explicit_pattern_recipes_reproduce_the_paper_example() {
        // Ternary design so the ladder covers three levels.
        let design = DecoderDesign::builder()
            .code(CodeSelection::Gray)
            .radix(LogicLevel::TERNARY)
            .code_length(8)
            .nanowires_per_half_cave(9)
            .build()
            .unwrap();
        let pattern = PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
            LogicLevel::TERNARY,
        )
        .unwrap();
        let recipe = DecoderRecipe::for_pattern(&design, &pattern).unwrap();
        // Example 3 of the paper: Φ = 9 (the dose values differ because the
        // design's ladder is model-derived, but the pass count is set by the
        // pattern alone).
        assert_eq!(recipe.lithography_passes(), 9);
    }
}
