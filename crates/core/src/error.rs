//! Error types for the `mspt-decoder` crate.

use std::error::Error;
use std::fmt;

use crossbar_array::CrossbarError;
use decoder_sim::SimError;
use device_physics::PhysicsError;
use mspt_fabrication::FabricationError;
use nanowire_codes::CodeError;

/// Errors produced by the decoder design layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DecoderError {
    /// A design parameter is invalid or inconsistent.
    InvalidDesign {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A design-space exploration was requested over an empty space.
    EmptyDesignSpace,
    /// An addressing request referenced a nanowire that does not exist or is
    /// not addressable.
    InvalidAddress {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An error bubbled up from the code layer.
    Code(CodeError),
    /// An error bubbled up from the device-physics layer.
    Physics(PhysicsError),
    /// An error bubbled up from the fabrication layer.
    Fabrication(FabricationError),
    /// An error bubbled up from the crossbar layer.
    Crossbar(CrossbarError),
    /// An error bubbled up from the simulation layer.
    Simulation(SimError),
}

impl fmt::Display for DecoderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecoderError::InvalidDesign { reason } => write!(f, "invalid decoder design: {reason}"),
            DecoderError::EmptyDesignSpace => {
                write!(f, "design-space exploration requested over an empty space")
            }
            DecoderError::InvalidAddress { reason } => write!(f, "invalid address: {reason}"),
            DecoderError::Code(err) => write!(f, "code error: {err}"),
            DecoderError::Physics(err) => write!(f, "device-physics error: {err}"),
            DecoderError::Fabrication(err) => write!(f, "fabrication error: {err}"),
            DecoderError::Crossbar(err) => write!(f, "crossbar error: {err}"),
            DecoderError::Simulation(err) => write!(f, "simulation error: {err}"),
        }
    }
}

impl Error for DecoderError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecoderError::Code(err) => Some(err),
            DecoderError::Physics(err) => Some(err),
            DecoderError::Fabrication(err) => Some(err),
            DecoderError::Crossbar(err) => Some(err),
            DecoderError::Simulation(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CodeError> for DecoderError {
    fn from(err: CodeError) -> Self {
        DecoderError::Code(err)
    }
}

impl From<PhysicsError> for DecoderError {
    fn from(err: PhysicsError) -> Self {
        DecoderError::Physics(err)
    }
}

impl From<FabricationError> for DecoderError {
    fn from(err: FabricationError) -> Self {
        DecoderError::Fabrication(err)
    }
}

impl From<CrossbarError> for DecoderError {
    fn from(err: CrossbarError) -> Self {
        DecoderError::Crossbar(err)
    }
}

impl From<SimError> for DecoderError {
    fn from(err: SimError) -> Self {
        DecoderError::Simulation(err)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DecoderError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(DecoderError::EmptyDesignSpace.source().is_none());
        assert!(!DecoderError::EmptyDesignSpace.to_string().is_empty());
        let wrapped: Vec<DecoderError> = vec![
            CodeError::EmptyWord.into(),
            PhysicsError::SolverDidNotConverge { iterations: 1 }.into(),
            FabricationError::InvalidMatrixShape {
                reason: "ragged".to_string(),
            }
            .into(),
            CrossbarError::InvalidProbability { value: -1.0 }.into(),
            SimError::EmptySweep.into(),
        ];
        for err in wrapped {
            assert!(err.source().is_some());
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecoderError>();
    }
}
