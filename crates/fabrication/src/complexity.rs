//! Fabrication (technology) complexity `Φ` (Definition 4): the total number
//! of additional lithography/doping steps needed to pattern the nanowires of
//! a half cave.
//!
//! Every MSPT iteration that defines a nanowire is followed by a patterning
//! procedure; the number of *distinct non-zero doses* used in that procedure
//! equals the number of separate lithography + implantation passes it needs
//! (`φ_i`). `Φ = Σ φ_i` is the cost the Gray arrangement minimises
//! (Proposition 5).

use serde::{Deserialize, Serialize};

use device_physics::DopingLadder;
use nanowire_codes::CodeSequence;

use crate::error::Result;
use crate::pattern::PatternMatrix;
use crate::steps::StepDopingMatrix;

/// The fabrication-complexity breakdown of a decoder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricationCost {
    per_step: Vec<usize>,
    total: usize,
}

impl FabricationCost {
    /// Computes the cost from a step doping matrix.
    #[must_use]
    pub fn from_steps(steps: &StepDopingMatrix) -> Self {
        let per_step = steps.distinct_doses_per_step();
        let total = per_step.iter().sum();
        FabricationCost { per_step, total }
    }

    /// Computes the cost of patterning `pattern` with the doses implied by
    /// `ladder`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`StepDopingMatrix::from_pattern`].
    pub fn from_pattern(pattern: &PatternMatrix, ladder: &DopingLadder) -> Result<Self> {
        Ok(FabricationCost::from_steps(
            &StepDopingMatrix::from_pattern(pattern, ladder)?,
        ))
    }

    /// Computes the cost of a code sequence used as the patterns of
    /// successive nanowires.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`PatternMatrix::from_sequence`] and
    /// [`FabricationCost::from_pattern`].
    pub fn from_sequence(sequence: &CodeSequence, ladder: &DopingLadder) -> Result<Self> {
        FabricationCost::from_pattern(&PatternMatrix::from_sequence(sequence)?, ladder)
    }

    /// The per-procedure lithography/doping counts `φ_i`.
    #[must_use]
    pub fn per_step(&self) -> &[usize] {
        &self.per_step
    }

    /// The total number of additional lithography/doping steps `Φ`.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// The number of nanowire-definition iterations the cost covers (`N`).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.per_step.len()
    }

    /// Average number of lithography/doping passes per MSPT iteration.
    #[must_use]
    pub fn average_per_step(&self) -> f64 {
        if self.per_step.is_empty() {
            0.0
        } else {
            self.total as f64 / self.per_step.len() as f64
        }
    }
}

/// Relative saving of `optimised` over `baseline` in total steps, as a
/// fraction in `[0, 1]` (e.g. the paper's "17 % fewer steps" for GC vs TC).
/// Returns 0 when the baseline is zero or the optimised cost is not smaller.
#[must_use]
pub fn relative_saving(baseline: &FabricationCost, optimised: &FabricationCost) -> f64 {
    if baseline.total() == 0 || optimised.total() >= baseline.total() {
        return 0.0;
    }
    (baseline.total() - optimised.total()) as f64 / baseline.total() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use device_physics::{ThresholdModel, Volts};
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn ladder_for(radix: LogicLevel) -> DopingLadder {
        DopingLadder::from_model(
            &ThresholdModel::default_mspt(),
            radix.radix_usize(),
            (Volts::new(0.0), Volts::new(1.0)),
        )
        .unwrap()
    }

    #[test]
    fn paper_example_3_cost() {
        let pattern = PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
            LogicLevel::TERNARY,
        )
        .unwrap();
        let cost = FabricationCost::from_pattern(&pattern, &DopingLadder::paper_example()).unwrap();
        assert_eq!(cost.per_step(), &[2, 4, 3]);
        assert_eq!(cost.total(), 9);
        assert_eq!(cost.step_count(), 3);
        assert!((cost.average_per_step() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_6_gray_cost() {
        let pattern = PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 2, 1, 0]],
            LogicLevel::TERNARY,
        )
        .unwrap();
        let cost = FabricationCost::from_pattern(&pattern, &DopingLadder::paper_example()).unwrap();
        assert_eq!(cost.per_step(), &[2, 2, 3]);
        assert_eq!(cost.total(), 7);
    }

    #[test]
    fn binary_codes_cost_two_steps_per_nanowire() {
        // Section 6.2 / Fig. 5: Φ is constant for all binary codes and equals
        // twice the number of nanowires in a half cave.
        let n = 10;
        let ladder = ladder_for(LogicLevel::BINARY);
        for kind in [CodeKind::Tree, CodeKind::Gray, CodeKind::BalancedGray] {
            let seq = CodeSpec::new(kind, LogicLevel::BINARY, 8)
                .unwrap()
                .generate()
                .unwrap()
                .take_cyclic(n)
                .unwrap();
            let cost = FabricationCost::from_sequence(&seq, &ladder).unwrap();
            assert_eq!(cost.total(), 2 * n, "{kind:?}");
        }
    }

    #[test]
    fn gray_code_is_cheaper_than_tree_code_for_higher_radix() {
        // Fig. 5: for ternary and quaternary logic the Gray code removes the
        // extra steps the tree code needs.
        let n = 10;
        for radix in [LogicLevel::TERNARY, LogicLevel::QUATERNARY] {
            let ladder = ladder_for(radix);
            let tree = CodeSpec::new(CodeKind::Tree, radix, 8)
                .unwrap()
                .generate()
                .unwrap()
                .take_cyclic(n)
                .unwrap();
            let gray = CodeSpec::new(CodeKind::Gray, radix, 8)
                .unwrap()
                .generate()
                .unwrap()
                .take_cyclic(n)
                .unwrap();
            let tree_cost = FabricationCost::from_sequence(&tree, &ladder).unwrap();
            let gray_cost = FabricationCost::from_sequence(&gray, &ladder).unwrap();
            assert!(
                gray_cost.total() < tree_cost.total(),
                "{radix}: GC {} vs TC {}",
                gray_cost.total(),
                tree_cost.total()
            );
            assert!(relative_saving(&tree_cost, &gray_cost) > 0.0);
        }
    }

    #[test]
    fn relative_saving_edge_cases() {
        let pattern =
            PatternMatrix::from_rows(vec![vec![0, 1], vec![1, 0]], LogicLevel::BINARY).unwrap();
        let ladder = ladder_for(LogicLevel::BINARY);
        let cost = FabricationCost::from_pattern(&pattern, &ladder).unwrap();
        assert_eq!(relative_saving(&cost, &cost), 0.0);
    }
}
