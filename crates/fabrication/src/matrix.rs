//! A small dense row-major matrix used for the pattern, doping, step and
//! variability matrices of the paper (all of them are `N × M` with `N` the
//! nanowires per half cave and `M` the doping regions per nanowire).
//!
//! The type is intentionally minimal — the decoder matrices are tiny (tens by
//! tens) so no linear-algebra dependency is warranted.

use serde::{Deserialize, Serialize};

use crate::error::{FabricationError, Result};

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use mspt_fabrication::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(*m.get(1, 0)?, 3);
/// assert_eq!(m.column(1), vec![2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    columns: usize,
    data: Vec<T>,
}

impl<T> Matrix<T> {
    /// Creates a matrix from rows.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::InvalidMatrixShape`] when there are no
    /// rows, a row is empty, or rows have different lengths.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Self> {
        let row_count = rows.len();
        if row_count == 0 {
            return Err(FabricationError::InvalidMatrixShape {
                reason: "matrix needs at least one row".to_string(),
            });
        }
        let columns = rows[0].len();
        if columns == 0 {
            return Err(FabricationError::InvalidMatrixShape {
                reason: "matrix needs at least one column".to_string(),
            });
        }
        let mut data = Vec::with_capacity(row_count * columns);
        for (index, row) in rows.into_iter().enumerate() {
            if row.len() != columns {
                return Err(FabricationError::InvalidMatrixShape {
                    reason: format!("row {index} has {} elements, expected {columns}", row.len()),
                });
            }
            data.extend(row);
        }
        Ok(Matrix {
            rows: row_count,
            columns,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Element at `(row, column)`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::IndexOutOfBounds`] when the position is
    /// outside the matrix.
    pub fn get(&self, row: usize, column: usize) -> Result<&T> {
        if row >= self.rows || column >= self.columns {
            return Err(FabricationError::IndexOutOfBounds {
                row,
                column,
                rows: self.rows,
                columns: self.columns,
            });
        }
        Ok(&self.data[row * self.columns + column])
    }

    /// The elements of a row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`; use [`Matrix::get`] for checked access.
    #[must_use]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.columns..(row + 1) * self.columns]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Applies a function to every element, producing a new matrix of the
    /// same shape.
    #[must_use]
    pub fn map<U, F: FnMut(&T) -> U>(&self, mut f: F) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            columns: self.columns,
            data: self.data.iter().map(&mut f).collect(),
        }
    }

    /// Applies a function to every element together with its position.
    #[must_use]
    pub fn map_indexed<U, F: FnMut(usize, usize, &T) -> U>(&self, mut f: F) -> Matrix<U> {
        let mut data = Vec::with_capacity(self.data.len());
        for r in 0..self.rows {
            for c in 0..self.columns {
                data.push(f(r, c, &self.data[r * self.columns + c]));
            }
        }
        Matrix {
            rows: self.rows,
            columns: self.columns,
            data,
        }
    }
}

impl<T: Clone> Matrix<T> {
    /// Creates a matrix filled with copies of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::InvalidMatrixShape`] when either dimension
    /// is zero.
    pub fn filled(rows: usize, columns: usize, value: T) -> Result<Self> {
        if rows == 0 || columns == 0 {
            return Err(FabricationError::InvalidMatrixShape {
                reason: format!("dimensions {rows}x{columns} must both be positive"),
            });
        }
        Ok(Matrix {
            rows,
            columns,
            data: vec![value; rows * columns],
        })
    }

    /// The elements of a column, copied into a vector.
    #[must_use]
    pub fn column(&self, column: usize) -> Vec<T> {
        (0..self.rows)
            .map(|r| self.data[r * self.columns + column].clone())
            .collect()
    }

    /// Sets the element at `(row, column)`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::IndexOutOfBounds`] when the position is
    /// outside the matrix.
    pub fn set(&mut self, row: usize, column: usize, value: T) -> Result<()> {
        if row >= self.rows || column >= self.columns {
            return Err(FabricationError::IndexOutOfBounds {
                row,
                column,
                rows: self.rows,
                columns: self.columns,
            });
        }
        self.data[row * self.columns + column] = value;
        Ok(())
    }

    /// The rows of the matrix as owned vectors.
    #[must_use]
    pub fn to_rows(&self) -> Vec<Vec<T>> {
        self.iter_rows().map(<[T]>::to_vec).collect()
    }
}

impl Matrix<f64> {
    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Entry-wise 1-norm: the sum of absolute values (`‖·‖₁` in the paper's
    /// Proposition 3).
    #[must_use]
    pub fn entrywise_l1_norm(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Largest element.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean of all elements.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }
}

impl Matrix<usize> {
    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> usize {
        self.data.iter().sum()
    }

    /// Largest element.
    #[must_use]
    pub fn max(&self) -> usize {
        self.data.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shape() {
        assert!(Matrix::<i32>::from_rows(vec![]).is_err());
        assert!(Matrix::from_rows(vec![Vec::<i32>::new()]).is_err());
        assert!(Matrix::from_rows(vec![vec![1, 2], vec![3]]).is_err());
        assert!(Matrix::filled(0, 3, 1.0).is_err());
        assert!(Matrix::filled(3, 0, 1.0).is_err());
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.columns(), 3);
    }

    #[test]
    fn access_and_mutation() {
        let mut m = Matrix::filled(2, 2, 0i32).unwrap();
        m.set(0, 1, 7).unwrap();
        assert_eq!(*m.get(0, 1).unwrap(), 7);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 5, 1).is_err());
        assert_eq!(m.row(0), &[0, 7]);
        assert_eq!(m.column(1), vec![7, 0]);
        assert_eq!(m.to_rows(), vec![vec![0, 7], vec![0, 0]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_access_panics_out_of_bounds() {
        let m = Matrix::filled(2, 2, 0i32).unwrap();
        let _ = m.row(5);
    }

    #[test]
    fn mapping_preserves_shape() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.row(1), &[6.0, 8.0]);
        let indexed = m.map_indexed(|r, c, v| (r + c) as f64 + v);
        assert_eq!(*indexed.get(1, 1).unwrap(), 6.0);
    }

    #[test]
    fn numeric_reductions() {
        let m = Matrix::from_rows(vec![vec![1.0, -2.0], vec![3.0, -4.0]]).unwrap();
        assert_eq!(m.sum(), -2.0);
        assert_eq!(m.entrywise_l1_norm(), 10.0);
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.mean(), -0.5);

        let u = Matrix::from_rows(vec![vec![1usize, 2], vec![3, 4]]).unwrap();
        assert_eq!(u.sum(), 10);
        assert_eq!(u.max(), 4);
    }

    #[test]
    fn iteration() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(m.iter().count(), 4);
        assert_eq!(m.iter_rows().count(), 2);
    }
}
