//! The decoder-aware MSPT process flow (Figs. 2 and 4 of the paper): an
//! event-level simulation of spacer definition and the interleaved
//! lithography/implantation steps that pattern the decoder.
//!
//! The simulator serves two purposes:
//!
//! 1. It produces the explicit *fabrication plan* — the ordered list of
//!    process events a fab would execute — for a given pattern matrix.
//! 2. It *replays* that plan against an initially undoped array and checks
//!    that the accumulated doping equals the final doping matrix `D`, and
//!    that the number of lithography passes and per-region dose hits agree
//!    with `Φ` and `ν`. This is an end-to-end audit of Propositions 1–3.

use serde::{Deserialize, Serialize};

use device_physics::DopingLadder;

use crate::complexity::FabricationCost;
use crate::doping::FinalDopingMatrix;
use crate::error::{FabricationError, Result};
use crate::matrix::Matrix;
use crate::pattern::PatternMatrix;
use crate::steps::StepDopingMatrix;
use crate::variability::DoseCountMatrix;

/// One event of the decoder-aware MSPT flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProcessEvent {
    /// Conformal deposition and anisotropic etch defining poly-Si spacer
    /// (nanowire) `index` (steps 2–3 of Fig. 2).
    DefineSpacer {
        /// Index of the nanowire being defined (0 = first / innermost).
        index: usize,
    },
    /// Deposition and etch of the SiO₂ spacer separating nanowire `index`
    /// from the next one (step 4 of Fig. 2).
    DefineInsulator {
        /// Index of the nanowire the insulator follows.
        index: usize,
    },
    /// One lithography + implantation pass of the patterning procedure that
    /// follows the definition of nanowire `step` (Fig. 4): a single dose is
    /// applied to a set of doping regions of *all* nanowires defined so far.
    LithographyDoping {
        /// The MSPT iteration the pass belongs to.
        step: usize,
        /// The implanted dose in cm⁻³ (signed: positive p-type, negative
        /// n-type).
        dose: f64,
        /// The doping regions (digit positions) covered by the mask.
        regions: Vec<usize>,
    },
    /// Gate (mesowire) patterning over the finished array (step 5 of Fig. 2).
    GatePatterning,
    /// Metallisation and via definition (step 6 of Fig. 2).
    Metallization,
}

/// The ordered list of process events implementing a decoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricationPlan {
    events: Vec<ProcessEvent>,
    nanowire_count: usize,
    region_count: usize,
}

impl FabricationPlan {
    /// Builds the fabrication plan for a pattern matrix: for every MSPT
    /// iteration, define the spacer, then run one lithography/doping pass per
    /// distinct non-zero dose of that step's row of `S`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`StepDopingMatrix::from_pattern`].
    pub fn for_pattern(pattern: &PatternMatrix, ladder: &DopingLadder) -> Result<Self> {
        let steps = StepDopingMatrix::from_pattern(pattern, ladder)?;
        let n = steps.step_count();
        let m = steps.region_count();
        let mut events = Vec::new();
        for i in 0..n {
            events.push(ProcessEvent::DefineSpacer { index: i });
            // Group the regions of this step by dose value; one lithography
            // pass per distinct non-zero dose.
            let mut groups: Vec<(f64, Vec<usize>)> = Vec::new();
            for j in 0..m {
                let dose = steps.dose(i, j)?;
                if !steps.is_nonzero_dose(dose) {
                    continue;
                }
                match groups
                    .iter_mut()
                    .find(|(d, _)| (*d - dose).abs() <= f64::EPSILON * d.abs().max(1.0) * 4.0)
                {
                    Some((_, regions)) => regions.push(j),
                    None => groups.push((dose, vec![j])),
                }
            }
            for (dose, regions) in groups {
                events.push(ProcessEvent::LithographyDoping {
                    step: i,
                    dose,
                    regions,
                });
            }
            events.push(ProcessEvent::DefineInsulator { index: i });
        }
        events.push(ProcessEvent::GatePatterning);
        events.push(ProcessEvent::Metallization);
        Ok(FabricationPlan {
            events,
            nanowire_count: n,
            region_count: m,
        })
    }

    /// The events of the plan, in execution order.
    #[must_use]
    pub fn events(&self) -> &[ProcessEvent] {
        &self.events
    }

    /// The number of nanowires the plan defines.
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.nanowire_count
    }

    /// The number of doping regions per nanowire.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// The number of lithography/doping passes in the plan — must equal the
    /// fabrication complexity `Φ` of the pattern it was built from.
    #[must_use]
    pub fn lithography_pass_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ProcessEvent::LithographyDoping { .. }))
            .count()
    }

    /// The number of spacer-definition iterations in the plan.
    #[must_use]
    pub fn spacer_definition_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ProcessEvent::DefineSpacer { .. }))
            .count()
    }

    /// Replays the plan against an initially undoped array and returns the
    /// resulting state.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::PlanMismatch`] if an event references a
    /// nanowire or region outside the array.
    pub fn replay(&self) -> Result<ReplayedArray> {
        let n = self.nanowire_count;
        let m = self.region_count;
        let mut doping = Matrix::filled(n, m, 0.0f64)?;
        let mut hits = Matrix::filled(n, m, 0usize)?;
        let mut defined = vec![false; n];

        for event in &self.events {
            match event {
                ProcessEvent::DefineSpacer { index } => {
                    if *index >= n {
                        return Err(FabricationError::PlanMismatch {
                            reason: format!("spacer index {index} out of range ({n})"),
                        });
                    }
                    defined[*index] = true;
                }
                ProcessEvent::DefineInsulator { index } => {
                    if *index >= n {
                        return Err(FabricationError::PlanMismatch {
                            reason: format!("insulator index {index} out of range ({n})"),
                        });
                    }
                }
                ProcessEvent::LithographyDoping {
                    step,
                    dose,
                    regions,
                } => {
                    if *step >= n || !defined[*step] {
                        return Err(FabricationError::PlanMismatch {
                            reason: format!(
                                "doping step {step} executed before its spacer was defined"
                            ),
                        });
                    }
                    for &region in regions {
                        if region >= m {
                            return Err(FabricationError::PlanMismatch {
                                reason: format!("region {region} out of range ({m})"),
                            });
                        }
                        // The implant hits every nanowire defined so far.
                        for (wire, wire_defined) in defined.iter().enumerate() {
                            if *wire_defined {
                                let current = *doping.get(wire, region)?;
                                doping.set(wire, region, current + dose)?;
                                let count = *hits.get(wire, region)?;
                                hits.set(wire, region, count + 1)?;
                            }
                        }
                    }
                }
                ProcessEvent::GatePatterning | ProcessEvent::Metallization => {}
            }
        }

        Ok(ReplayedArray {
            doping,
            dose_hits: hits,
        })
    }

    /// Full audit of the plan against the pattern it implements: the replayed
    /// doping must equal `D`, the lithography pass count must equal `Φ`, and
    /// the per-region dose hits must equal `ν`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::PlanMismatch`] describing the first
    /// discrepancy, or propagates construction errors.
    pub fn audit(&self, pattern: &PatternMatrix, ladder: &DopingLadder) -> Result<ProcessAudit> {
        let replayed = self.replay()?;
        let expected_doping = FinalDopingMatrix::from_pattern(pattern, ladder)?;
        let steps = StepDopingMatrix::from_pattern(pattern, ladder)?;
        let expected_doses = DoseCountMatrix::from_steps(&steps);
        let cost = FabricationCost::from_steps(&steps);

        let n = pattern.nanowire_count();
        let m = pattern.region_count();
        let scale = expected_doping
            .as_matrix()
            .iter()
            .fold(1.0f64, |acc, &v| acc.max(v.abs()));
        for i in 0..n {
            for j in 0..m {
                let replayed_level = *replayed.doping.get(i, j)?;
                let expected_level = expected_doping.level(i, j)?.value();
                if (replayed_level - expected_level).abs() > 1e-9 * scale {
                    return Err(FabricationError::PlanMismatch {
                        reason: format!(
                            "doping mismatch at nanowire {i}, region {j}: replayed {replayed_level}, expected {expected_level}"
                        ),
                    });
                }
                let replayed_hits = *replayed.dose_hits.get(i, j)?;
                let expected_hits = expected_doses.count(i, j)?;
                if replayed_hits != expected_hits {
                    return Err(FabricationError::PlanMismatch {
                        reason: format!(
                            "dose-count mismatch at nanowire {i}, region {j}: replayed {replayed_hits}, expected {expected_hits}"
                        ),
                    });
                }
            }
        }
        if self.lithography_pass_count() != cost.total() {
            return Err(FabricationError::PlanMismatch {
                reason: format!(
                    "lithography pass count {} does not match Φ = {}",
                    self.lithography_pass_count(),
                    cost.total()
                ),
            });
        }

        Ok(ProcessAudit {
            lithography_passes: self.lithography_pass_count(),
            fabrication_cost: cost,
            dose_counts: expected_doses,
        })
    }
}

/// The state of the array after replaying a fabrication plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedArray {
    /// Accumulated doping of every region (cm⁻³).
    pub doping: Matrix<f64>,
    /// Number of implantation hits of every region.
    pub dose_hits: Matrix<usize>,
}

/// The result of a successful plan audit.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessAudit {
    /// Number of lithography/doping passes in the plan.
    pub lithography_passes: usize,
    /// The fabrication cost derived from the step matrix (must agree).
    pub fabrication_cost: FabricationCost,
    /// The dose-count matrix derived from the step matrix (must agree).
    pub dose_counts: DoseCountMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn paper_pattern() -> PatternMatrix {
        PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
            LogicLevel::TERNARY,
        )
        .unwrap()
    }

    #[test]
    fn plan_structure_for_the_paper_example() {
        let plan =
            FabricationPlan::for_pattern(&paper_pattern(), &DopingLadder::paper_example()).unwrap();
        assert_eq!(plan.nanowire_count(), 3);
        assert_eq!(plan.region_count(), 4);
        assert_eq!(plan.spacer_definition_count(), 3);
        // Example 3: Φ = 9 lithography/doping passes.
        assert_eq!(plan.lithography_pass_count(), 9);
        // The plan ends with gate patterning and metallisation.
        let tail: Vec<_> = plan.events().iter().rev().take(2).collect();
        assert!(matches!(tail[0], ProcessEvent::Metallization));
        assert!(matches!(tail[1], ProcessEvent::GatePatterning));
    }

    #[test]
    fn replay_matches_the_final_doping_matrix() {
        let ladder = DopingLadder::paper_example();
        let pattern = paper_pattern();
        let plan = FabricationPlan::for_pattern(&pattern, &ladder).unwrap();
        let audit = plan.audit(&pattern, &ladder).unwrap();
        assert_eq!(audit.lithography_passes, 9);
        assert_eq!(audit.fabrication_cost.total(), 9);
        assert_eq!(audit.dose_counts.total(), 22);
    }

    #[test]
    fn audit_detects_a_foreign_pattern() {
        let ladder = DopingLadder::paper_example();
        let pattern = paper_pattern();
        let other = PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 2, 1, 0]],
            LogicLevel::TERNARY,
        )
        .unwrap();
        let plan = FabricationPlan::for_pattern(&pattern, &ladder).unwrap();
        assert!(matches!(
            plan.audit(&other, &ladder),
            Err(FabricationError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn audits_pass_for_generated_codes() {
        let ladder = DopingLadder::paper_example();
        for kind in [CodeKind::Tree, CodeKind::Gray] {
            let seq = CodeSpec::new(kind, LogicLevel::TERNARY, 6)
                .unwrap()
                .generate()
                .unwrap()
                .take_cyclic(12)
                .unwrap();
            let pattern = PatternMatrix::from_sequence(&seq).unwrap();
            let plan = FabricationPlan::for_pattern(&pattern, &ladder).unwrap();
            plan.audit(&pattern, &ladder).unwrap();
        }
    }

    #[test]
    fn gray_plans_need_fewer_passes_than_tree_plans() {
        let ladder = DopingLadder::paper_example();
        let tree = CodeSpec::new(CodeKind::Tree, LogicLevel::TERNARY, 6)
            .unwrap()
            .generate()
            .unwrap()
            .take_cyclic(10)
            .unwrap();
        let gray = CodeSpec::new(CodeKind::Gray, LogicLevel::TERNARY, 6)
            .unwrap()
            .generate()
            .unwrap()
            .take_cyclic(10)
            .unwrap();
        let tree_plan =
            FabricationPlan::for_pattern(&PatternMatrix::from_sequence(&tree).unwrap(), &ladder)
                .unwrap();
        let gray_plan =
            FabricationPlan::for_pattern(&PatternMatrix::from_sequence(&gray).unwrap(), &ladder)
                .unwrap();
        assert!(gray_plan.lithography_pass_count() < tree_plan.lithography_pass_count());
    }
}
