//! Error types for the `mspt-fabrication` crate.

use std::error::Error;
use std::fmt;

use device_physics::PhysicsError;
use nanowire_codes::CodeError;

/// Errors produced by the MSPT fabrication model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FabricationError {
    /// A matrix was constructed with inconsistent row lengths or zero size.
    InvalidMatrixShape {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An index into a matrix was out of bounds.
    IndexOutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        column: usize,
        /// Matrix row count.
        rows: usize,
        /// Matrix column count.
        columns: usize,
    },
    /// The doping ladder has fewer levels than the pattern radix requires.
    LadderTooSmall {
        /// Number of levels the ladder provides.
        levels: usize,
        /// Radix the pattern requires.
        radix: u8,
    },
    /// The spacer geometry is physically impossible (non-positive thickness,
    /// cave narrower than one spacer pair, ...).
    InvalidGeometry {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A process plan was replayed against a pattern it does not produce.
    PlanMismatch {
        /// Human-readable description of the first mismatch.
        reason: String,
    },
    /// An error bubbled up from the code layer.
    Code(CodeError),
    /// An error bubbled up from the device-physics layer.
    Physics(PhysicsError),
}

impl fmt::Display for FabricationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricationError::InvalidMatrixShape { reason } => {
                write!(f, "invalid matrix shape: {reason}")
            }
            FabricationError::IndexOutOfBounds {
                row,
                column,
                rows,
                columns,
            } => write!(
                f,
                "index ({row}, {column}) out of bounds for a {rows}x{columns} matrix"
            ),
            FabricationError::LadderTooSmall { levels, radix } => write!(
                f,
                "doping ladder provides {levels} levels but the pattern radix is {radix}"
            ),
            FabricationError::InvalidGeometry { reason } => {
                write!(f, "invalid spacer geometry: {reason}")
            }
            FabricationError::PlanMismatch { reason } => {
                write!(f, "fabrication plan mismatch: {reason}")
            }
            FabricationError::Code(err) => write!(f, "code error: {err}"),
            FabricationError::Physics(err) => write!(f, "device-physics error: {err}"),
        }
    }
}

impl Error for FabricationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FabricationError::Code(err) => Some(err),
            FabricationError::Physics(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CodeError> for FabricationError {
    fn from(err: CodeError) -> Self {
        FabricationError::Code(err)
    }
}

impl From<PhysicsError> for FabricationError {
    fn from(err: PhysicsError) -> Self {
        FabricationError::Physics(err)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FabricationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let code_err = FabricationError::from(CodeError::EmptyWord);
        assert!(code_err.to_string().contains("code error"));
        assert!(code_err.source().is_some());

        let physics_err =
            FabricationError::from(PhysicsError::SolverDidNotConverge { iterations: 10 });
        assert!(physics_err.to_string().contains("device-physics"));
        assert!(physics_err.source().is_some());

        let shape = FabricationError::InvalidMatrixShape {
            reason: "rows differ".to_string(),
        };
        assert!(shape.source().is_none());
        assert!(!shape.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricationError>();
    }
}
