//! Decoder variability (Definition 5): the dose-count matrix `ν` and the
//! variance matrix `Σ = σ_T² · ν` of the threshold voltages of every doping
//! region of a half cave.
//!
//! Region `(i, j)` is hit by the doping procedure of every MSPT iteration
//! `k ≥ i` whose step dose `S_k^j` is non-zero; because the doses are
//! independent Gaussian disturbances their variances add, giving
//! `Σ_i^j = σ_T² · ν_i^j`. The Gray arrangement minimises `‖Σ‖₁`
//! (Proposition 4) and the balanced Gray arrangement additionally evens the
//! per-digit distribution (Fig. 6).

use serde::{Deserialize, Serialize};

use device_physics::{DopingLadder, VariabilityModel, Volts};
use nanowire_codes::CodeSequence;

use crate::error::Result;
use crate::matrix::Matrix;
use crate::pattern::PatternMatrix;
use crate::steps::StepDopingMatrix;

/// The dose-count matrix `ν ∈ ℕ^{N×M}`: how many doping operations hit every
/// region over the whole MSPT flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoseCountMatrix {
    counts: Matrix<usize>,
}

impl DoseCountMatrix {
    /// Derives the dose counts from a step doping matrix:
    /// `ν_i^j = Σ_{k≥i} [S_k^j ≠ 0]`.
    #[must_use]
    pub fn from_steps(steps: &StepDopingMatrix) -> Self {
        let n = steps.step_count();
        let m = steps.region_count();
        let mut rows = vec![vec![0usize; m]; n];
        let mut suffix = vec![0usize; m];
        for i in (0..n).rev() {
            for (j, count) in suffix.iter_mut().enumerate() {
                let dose = steps.dose(i, j).expect("in range");
                if steps.is_nonzero_dose(dose) {
                    *count += 1;
                }
            }
            rows[i] = suffix.clone();
        }
        DoseCountMatrix {
            counts: Matrix::from_rows(rows).expect("same shape as S"),
        }
    }

    /// Convenience constructor from a pattern and a ladder.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`StepDopingMatrix::from_pattern`].
    pub fn from_pattern(pattern: &PatternMatrix, ladder: &DopingLadder) -> Result<Self> {
        Ok(DoseCountMatrix::from_steps(
            &StepDopingMatrix::from_pattern(pattern, ladder)?,
        ))
    }

    /// Number of nanowires `N`.
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.counts.rows()
    }

    /// Number of doping regions `M`.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.counts.columns()
    }

    /// The dose count `ν_i^j`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FabricationError::IndexOutOfBounds`] for invalid
    /// positions.
    pub fn count(&self, nanowire: usize, region: usize) -> Result<usize> {
        Ok(*self.counts.get(nanowire, region)?)
    }

    /// The underlying matrix.
    #[must_use]
    pub fn as_matrix(&self) -> &Matrix<usize> {
        &self.counts
    }

    /// Sum of all dose counts — equal to `‖Σ‖₁ / σ_T²`.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.sum()
    }

    /// The largest dose count of the half cave.
    #[must_use]
    pub fn max(&self) -> usize {
        self.counts.max()
    }

    /// Mean dose count per region (`‖Σ‖₁ / (N·M·σ_T²)`), the paper's
    /// "average variability" metric.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.total() as f64 / (self.nanowire_count() * self.region_count()) as f64
    }

    /// Mean dose count per digit position (averaged over nanowires): the
    /// profile plotted along the digit axis of Fig. 6.
    #[must_use]
    pub fn mean_per_region(&self) -> Vec<f64> {
        let n = self.nanowire_count() as f64;
        (0..self.region_count())
            .map(|j| self.counts.column(j).iter().sum::<usize>() as f64 / n)
            .collect()
    }
}

/// The variability matrix `Σ = σ_T² · ν` (variances, V²).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityMatrix {
    doses: DoseCountMatrix,
    sigma_per_dose: Volts,
}

impl VariabilityMatrix {
    /// Builds the variability matrix from dose counts and a per-dose
    /// variability model.
    #[must_use]
    pub fn new(doses: DoseCountMatrix, model: &VariabilityModel) -> Self {
        VariabilityMatrix {
            doses,
            sigma_per_dose: model.sigma_per_dose(),
        }
    }

    /// Convenience constructor from a pattern, a ladder and a variability
    /// model.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`DoseCountMatrix::from_pattern`].
    pub fn from_pattern(
        pattern: &PatternMatrix,
        ladder: &DopingLadder,
        model: &VariabilityModel,
    ) -> Result<Self> {
        Ok(VariabilityMatrix::new(
            DoseCountMatrix::from_pattern(pattern, ladder)?,
            model,
        ))
    }

    /// Convenience constructor from a code sequence.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`PatternMatrix::from_sequence`].
    pub fn from_sequence(
        sequence: &CodeSequence,
        ladder: &DopingLadder,
        model: &VariabilityModel,
    ) -> Result<Self> {
        VariabilityMatrix::from_pattern(&PatternMatrix::from_sequence(sequence)?, ladder, model)
    }

    /// The underlying dose counts `ν`.
    #[must_use]
    pub fn dose_counts(&self) -> &DoseCountMatrix {
        &self.doses
    }

    /// Number of nanowires `N`.
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.doses.nanowire_count()
    }

    /// Number of doping regions `M`.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.doses.region_count()
    }

    /// The variance `Σ_i^j` in V².
    ///
    /// # Errors
    ///
    /// Returns [`crate::FabricationError::IndexOutOfBounds`] for invalid
    /// positions.
    pub fn variance(&self, nanowire: usize, region: usize) -> Result<f64> {
        Ok(self.sigma_per_dose.value().powi(2) * self.doses.count(nanowire, region)? as f64)
    }

    /// The standard deviation of region `(i, j)` in volts
    /// (`σ_T · sqrt(ν_i^j)`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::FabricationError::IndexOutOfBounds`] for invalid
    /// positions.
    pub fn std_dev(&self, nanowire: usize, region: usize) -> Result<Volts> {
        Ok(Volts::new(
            self.sigma_per_dose.value() * (self.doses.count(nanowire, region)? as f64).sqrt(),
        ))
    }

    /// The normalised standard deviation `sqrt(Σ_i^j) / σ_T = sqrt(ν_i^j)` —
    /// the quantity plotted on the z-axis of Fig. 6.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FabricationError::IndexOutOfBounds`] for invalid
    /// positions.
    pub fn normalized_std_dev(&self, nanowire: usize, region: usize) -> Result<f64> {
        Ok((self.doses.count(nanowire, region)? as f64).sqrt())
    }

    /// The full normalised map `sqrt(ν)` as a matrix (Fig. 6 surface).
    #[must_use]
    pub fn normalized_map(&self) -> Matrix<f64> {
        self.doses.as_matrix().map(|&c| (c as f64).sqrt())
    }

    /// The entry-wise 1-norm `‖Σ‖₁` in V² (Proposition 3's objective).
    #[must_use]
    pub fn l1_norm(&self) -> f64 {
        self.sigma_per_dose.value().powi(2) * self.doses.total() as f64
    }

    /// `‖Σ‖₁` expressed in units of `σ_T²` — the form the paper's examples
    /// use (e.g. `‖Σ‖₁ = 22·σ_T²` in Example 4).
    #[must_use]
    pub fn l1_norm_in_sigma_units(&self) -> usize {
        self.doses.total()
    }

    /// Average variance per region in units of `σ_T²`
    /// (`‖Σ‖₁ / (N·M·σ_T²)`), the "average variability" of Section 6.2.
    #[must_use]
    pub fn mean_in_sigma_units(&self) -> f64 {
        self.doses.mean()
    }

    /// The per-dose deviation σ_T the matrix was built with.
    #[must_use]
    pub fn sigma_per_dose(&self) -> Volts {
        self.sigma_per_dose
    }
}

/// Relative reduction of the mean variability of `optimised` with respect to
/// `baseline`, as a fraction in `[0, 1]` (the paper reports 18 % on average
/// for the balanced Gray code against the tree code).
#[must_use]
pub fn relative_variability_reduction(
    baseline: &VariabilityMatrix,
    optimised: &VariabilityMatrix,
) -> f64 {
    let base = baseline.mean_in_sigma_units();
    let opt = optimised.mean_in_sigma_units();
    if base <= 0.0 || opt >= base {
        0.0
    } else {
        (base - opt) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::LogicLevel;

    fn paper_pattern() -> PatternMatrix {
        PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
            LogicLevel::TERNARY,
        )
        .unwrap()
    }

    fn gray_pattern() -> PatternMatrix {
        PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 2, 1, 0]],
            LogicLevel::TERNARY,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_4_dose_counts() {
        let doses = DoseCountMatrix::from_pattern(&paper_pattern(), &DopingLadder::paper_example())
            .unwrap();
        assert_eq!(
            doses.as_matrix().to_rows(),
            vec![vec![2, 3, 2, 3], vec![2, 2, 2, 2], vec![1, 1, 1, 1],]
        );
        assert_eq!(doses.total(), 22);
        assert_eq!(doses.max(), 3);
        assert_eq!(doses.nanowire_count(), 3);
        assert_eq!(doses.region_count(), 4);
    }

    #[test]
    fn paper_example_5_gray_dose_counts() {
        let doses =
            DoseCountMatrix::from_pattern(&gray_pattern(), &DopingLadder::paper_example()).unwrap();
        assert_eq!(
            doses.as_matrix().to_rows(),
            vec![vec![2, 2, 2, 2], vec![2, 1, 2, 1], vec![1, 1, 1, 1],]
        );
        assert_eq!(doses.total(), 18);
    }

    #[test]
    fn variability_matrix_scales_dose_counts_by_sigma_squared() {
        let model = VariabilityModel::paper_default();
        let sigma = model.sigma_per_dose().value();
        let variability = VariabilityMatrix::from_pattern(
            &paper_pattern(),
            &DopingLadder::paper_example(),
            &model,
        )
        .unwrap();
        assert_eq!(variability.l1_norm_in_sigma_units(), 22);
        assert!((variability.l1_norm() - 22.0 * sigma * sigma).abs() < 1e-12);
        assert!((variability.variance(0, 1).unwrap() - 3.0 * sigma * sigma).abs() < 1e-12);
        assert!((variability.std_dev(0, 1).unwrap().value() - sigma * 3f64.sqrt()).abs() < 1e-12);
        assert!((variability.normalized_std_dev(0, 1).unwrap() - 3f64.sqrt()).abs() < 1e-12);
        assert!(variability.variance(9, 0).is_err());
    }

    #[test]
    fn gray_code_reduces_the_l1_norm() {
        // Example 5: the Gray arrangement reduces ‖Σ‖₁ from 22σ² to 18σ².
        let model = VariabilityModel::paper_default();
        let ladder = DopingLadder::paper_example();
        let tree = VariabilityMatrix::from_pattern(&paper_pattern(), &ladder, &model).unwrap();
        let gray = VariabilityMatrix::from_pattern(&gray_pattern(), &ladder, &model).unwrap();
        assert_eq!(tree.l1_norm_in_sigma_units(), 22);
        assert_eq!(gray.l1_norm_in_sigma_units(), 18);
        let reduction = relative_variability_reduction(&tree, &gray);
        assert!((reduction - 4.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn last_nanowire_always_has_one_dose_per_region() {
        // ν_{N-1}^j = 1 for every j (the proof of Proposition 4 starts here).
        let doses = DoseCountMatrix::from_pattern(&paper_pattern(), &DopingLadder::paper_example())
            .unwrap();
        let last = doses.nanowire_count() - 1;
        for j in 0..doses.region_count() {
            assert_eq!(doses.count(last, j).unwrap(), 1);
        }
    }

    #[test]
    fn dose_counts_decrease_along_the_definition_order() {
        // ν_i^j >= ν_{i+1}^j: earlier nanowires accumulate at least as many
        // doses as later ones.
        let doses = DoseCountMatrix::from_pattern(&paper_pattern(), &DopingLadder::paper_example())
            .unwrap();
        for j in 0..doses.region_count() {
            for i in 0..doses.nanowire_count() - 1 {
                assert!(doses.count(i, j).unwrap() >= doses.count(i + 1, j).unwrap());
            }
        }
    }

    #[test]
    fn aggregate_statistics() {
        let doses =
            DoseCountMatrix::from_pattern(&gray_pattern(), &DopingLadder::paper_example()).unwrap();
        assert!((doses.mean() - 1.5).abs() < 1e-12);
        assert_eq!(doses.mean_per_region().len(), 4);
        let variability = VariabilityMatrix::new(doses, &VariabilityModel::paper_default());
        assert!((variability.mean_in_sigma_units() - 1.5).abs() < 1e-12);
        assert_eq!(variability.normalized_map().rows(), 3);
        assert_eq!(variability.sigma_per_dose(), Volts::from_millivolts(50.0));
        assert_eq!(variability.nanowire_count(), 3);
        assert_eq!(variability.region_count(), 4);
    }

    #[test]
    fn no_reduction_reported_when_baseline_is_not_worse() {
        let model = VariabilityModel::paper_default();
        let ladder = DopingLadder::paper_example();
        let tree = VariabilityMatrix::from_pattern(&paper_pattern(), &ladder, &model).unwrap();
        assert_eq!(relative_variability_reduction(&tree, &tree), 0.0);
    }
}
