//! The final doping matrix `D` (Definition 2) and the threshold-voltage
//! matrix `V`: the images of the pattern matrix under the bijections `g`
//! (digit → V_T) and `h = f ∘ g` (digit → N_D) of Proposition 1.

use serde::{Deserialize, Serialize};

use device_physics::{DopantConcentration, DopingLadder, Volts};

use crate::error::{FabricationError, Result};
use crate::matrix::Matrix;
use crate::pattern::PatternMatrix;

/// The final doping matrix `D ∈ ℝ^{N×M}`: the accumulated doping level of
/// every doping region after the whole array has been defined.
///
/// Doping levels are stored in cm⁻³; the paper's examples quote them in
/// units of 10¹⁸ cm⁻³, available through [`FinalDopingMatrix::in_1e18`].
///
/// # Examples
///
/// ```
/// use device_physics::DopingLadder;
/// use mspt_fabrication::{FinalDopingMatrix, PatternMatrix};
/// use nanowire_codes::LogicLevel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pattern = PatternMatrix::from_rows(
///     vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
///     LogicLevel::TERNARY,
/// )?;
/// let doping = FinalDopingMatrix::from_pattern(&pattern, &DopingLadder::paper_example())?;
/// // Example 1 of the paper: D[0] = [2, 4, 9, 4] × 10^18 cm^-3.
/// assert_eq!(doping.in_1e18().row(0), &[2.0, 4.0, 9.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinalDopingMatrix {
    levels: Matrix<f64>,
}

impl FinalDopingMatrix {
    /// Builds the final doping matrix from a pattern and a doping ladder —
    /// the application of `h = f ∘ g` element-wise (Proposition 1).
    ///
    /// # Errors
    ///
    /// * [`FabricationError::LadderTooSmall`] when the ladder has fewer
    ///   levels than the pattern radix.
    /// * [`FabricationError::Physics`] when a digit lookup fails.
    pub fn from_pattern(pattern: &PatternMatrix, ladder: &DopingLadder) -> Result<Self> {
        if ladder.level_count() < pattern.radix().radix_usize() {
            return Err(FabricationError::LadderTooSmall {
                levels: ladder.level_count(),
                radix: pattern.radix().radix(),
            });
        }
        let mut rows = Vec::with_capacity(pattern.nanowire_count());
        for i in 0..pattern.nanowire_count() {
            let mut row = Vec::with_capacity(pattern.region_count());
            for &digit in pattern.nanowire_pattern(i) {
                row.push(ladder.doping(digit)?.value());
            }
            rows.push(row);
        }
        Ok(FinalDopingMatrix {
            levels: Matrix::from_rows(rows)?,
        })
    }

    /// Builds a doping matrix directly from levels given in 10¹⁸ cm⁻³, as
    /// quoted in the paper's worked examples.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::InvalidMatrixShape`] for ragged or empty
    /// rows.
    pub fn from_rows_1e18(rows: Vec<Vec<f64>>) -> Result<Self> {
        let scaled: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|row| row.into_iter().map(|v| v * 1e18).collect())
            .collect();
        Ok(FinalDopingMatrix {
            levels: Matrix::from_rows(scaled)?,
        })
    }

    /// Number of nanowires `N`.
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.levels.rows()
    }

    /// Number of doping regions `M` per nanowire.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.levels.columns()
    }

    /// The doping level `D_i^j` of nanowire `i`, region `j`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::IndexOutOfBounds`] for invalid positions.
    pub fn level(&self, nanowire: usize, region: usize) -> Result<DopantConcentration> {
        Ok(DopantConcentration::new(
            *self.levels.get(nanowire, region)?,
        ))
    }

    /// The underlying matrix in cm⁻³.
    #[must_use]
    pub fn as_matrix(&self) -> &Matrix<f64> {
        &self.levels
    }

    /// The matrix expressed in units of 10¹⁸ cm⁻³ (the paper's convention).
    #[must_use]
    pub fn in_1e18(&self) -> Matrix<f64> {
        self.levels.map(|v| v / 1e18)
    }

    /// Decodes the doping matrix back to a pattern matrix using the nearest
    /// ladder level for every region — the inverse of `h`, useful to verify
    /// bijectivity end-to-end.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::Code`] if the decoded digits do not form a
    /// valid pattern (cannot happen when the ladder covers the radix).
    pub fn decode_pattern(&self, ladder: &DopingLadder) -> Result<PatternMatrix> {
        let rows: Vec<Vec<u8>> = self
            .levels
            .iter_rows()
            .map(|row| {
                row.iter()
                    .map(|&v| ladder.digit_for_doping(DopantConcentration::new(v)))
                    .collect()
            })
            .collect();
        let radix = nanowire_codes::LogicLevel::new(ladder.level_count() as u8)?;
        PatternMatrix::from_rows(rows, radix)
    }
}

/// The threshold-voltage matrix `V`: the image of the pattern under `g`
/// alone. The paper's Example 1 writes it in units of 0.1 V.
///
/// # Errors
///
/// * [`FabricationError::LadderTooSmall`] when the ladder has fewer levels
///   than the pattern radix.
/// * [`FabricationError::Physics`] when a digit lookup fails.
pub fn threshold_matrix(pattern: &PatternMatrix, ladder: &DopingLadder) -> Result<Matrix<f64>> {
    if ladder.level_count() < pattern.radix().radix_usize() {
        return Err(FabricationError::LadderTooSmall {
            levels: ladder.level_count(),
            radix: pattern.radix().radix(),
        });
    }
    let mut rows = Vec::with_capacity(pattern.nanowire_count());
    for i in 0..pattern.nanowire_count() {
        let mut row = Vec::with_capacity(pattern.region_count());
        for &digit in pattern.nanowire_pattern(i) {
            row.push(ladder.threshold(digit)?.value());
        }
        rows.push(row);
    }
    Matrix::from_rows(rows)
}

/// The nominal threshold voltage of a single region of a pattern.
///
/// # Errors
///
/// * [`FabricationError::IndexOutOfBounds`] for invalid positions.
/// * [`FabricationError::Physics`] when the digit has no ladder level.
pub fn nominal_threshold(
    pattern: &PatternMatrix,
    ladder: &DopingLadder,
    nanowire: usize,
    region: usize,
) -> Result<Volts> {
    let digit = pattern.digit(nanowire, region)?;
    Ok(ladder.threshold(digit)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::LogicLevel;

    fn paper_pattern() -> PatternMatrix {
        PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
            LogicLevel::TERNARY,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_1_doping_matrix() {
        let doping =
            FinalDopingMatrix::from_pattern(&paper_pattern(), &DopingLadder::paper_example())
                .unwrap();
        let d = doping.in_1e18();
        assert_eq!(d.row(0), &[2.0, 4.0, 9.0, 4.0]);
        assert_eq!(d.row(1), &[2.0, 9.0, 9.0, 2.0]);
        assert_eq!(d.row(2), &[4.0, 2.0, 4.0, 9.0]);
        assert_eq!(doping.nanowire_count(), 3);
        assert_eq!(doping.region_count(), 4);
    }

    #[test]
    fn paper_example_1_threshold_matrix() {
        let v = threshold_matrix(&paper_pattern(), &DopingLadder::paper_example()).unwrap();
        // The paper writes V in units of 0.1 V: [[1,3,5,3],[1,5,5,1],[3,1,3,5]].
        let in_tenths: Vec<Vec<f64>> = v
            .iter_rows()
            .map(|row| row.iter().map(|&x| (x / 0.1).round()).collect())
            .collect();
        assert_eq!(
            in_tenths,
            vec![
                vec![1.0, 3.0, 5.0, 3.0],
                vec![1.0, 5.0, 5.0, 1.0],
                vec![3.0, 1.0, 3.0, 5.0]
            ]
        );
    }

    #[test]
    fn ladder_must_cover_the_radix() {
        let binary_ladder = DopingLadder::from_model(
            &device_physics::ThresholdModel::default_mspt(),
            2,
            (Volts::new(0.0), Volts::new(1.0)),
        )
        .unwrap();
        assert!(matches!(
            FinalDopingMatrix::from_pattern(&paper_pattern(), &binary_ladder),
            Err(FabricationError::LadderTooSmall {
                levels: 2,
                radix: 3
            })
        ));
        assert!(threshold_matrix(&paper_pattern(), &binary_ladder).is_err());
    }

    #[test]
    fn mapping_is_invertible() {
        let ladder = DopingLadder::paper_example();
        let pattern = paper_pattern();
        let doping = FinalDopingMatrix::from_pattern(&pattern, &ladder).unwrap();
        let decoded = doping.decode_pattern(&ladder).unwrap();
        assert_eq!(decoded, pattern);
    }

    #[test]
    fn explicit_1e18_constructor() {
        let doping =
            FinalDopingMatrix::from_rows_1e18(vec![vec![2.0, 4.0], vec![9.0, 2.0]]).unwrap();
        assert!((doping.level(1, 0).unwrap().value() - 9e18).abs() < 1.0);
        assert!(doping.level(2, 0).is_err());
        assert!(FinalDopingMatrix::from_rows_1e18(vec![]).is_err());
    }

    #[test]
    fn nominal_threshold_lookup() {
        let pattern = paper_pattern();
        let ladder = DopingLadder::paper_example();
        assert_eq!(
            nominal_threshold(&pattern, &ladder, 0, 2).unwrap(),
            Volts::new(0.5)
        );
        assert!(nominal_threshold(&pattern, &ladder, 9, 0).is_err());
    }
}
