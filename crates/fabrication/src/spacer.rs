//! Spacer and cave geometry of the MSPT (Section 3.1): iterated conformal
//! deposition and anisotropic etching of poly-Si/SiO₂ pairs inside a
//! lithographically defined cave produces two symmetric half caves of
//! parallel nanowires whose pitch is set by film thicknesses, not by the
//! lithography.

use serde::{Deserialize, Serialize};

use device_physics::Nanometers;

use crate::error::{FabricationError, Result};

/// Geometry of the multi-spacer stack inside one cave.
///
/// # Examples
///
/// ```
/// use device_physics::Nanometers;
/// use mspt_fabrication::SpacerGeometry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 5 nm poly-Si nanowires separated by 5 nm SiO2 inside a 0.8 µm cave.
/// let geometry = SpacerGeometry::new(
///     Nanometers::new(5.0),
///     Nanometers::new(5.0),
///     Nanometers::from_micrometers(0.8),
///     Nanometers::new(300.0),
/// )?;
/// assert_eq!(geometry.nanowire_pitch(), Nanometers::new(10.0));
/// assert_eq!(geometry.nanowires_per_half_cave(), 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpacerGeometry {
    poly_thickness: Nanometers,
    oxide_thickness: Nanometers,
    cave_width: Nanometers,
    spacer_height: Nanometers,
}

impl SpacerGeometry {
    /// Creates a spacer geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::InvalidGeometry`] when any thickness is
    /// non-positive or the cave cannot hold at least one spacer pair per half
    /// cave.
    pub fn new(
        poly_thickness: Nanometers,
        oxide_thickness: Nanometers,
        cave_width: Nanometers,
        spacer_height: Nanometers,
    ) -> Result<Self> {
        for (name, value) in [
            ("poly_thickness", poly_thickness),
            ("oxide_thickness", oxide_thickness),
            ("cave_width", cave_width),
            ("spacer_height", spacer_height),
        ] {
            if !(value.value() > 0.0 && value.is_finite()) {
                return Err(FabricationError::InvalidGeometry {
                    reason: format!("{name} must be positive, got {}", value.value()),
                });
            }
        }
        let geometry = SpacerGeometry {
            poly_thickness,
            oxide_thickness,
            cave_width,
            spacer_height,
        };
        if geometry.nanowires_per_half_cave() == 0 {
            return Err(FabricationError::InvalidGeometry {
                reason: format!("cave of {cave_width} cannot hold one spacer pair per half cave"),
            });
        }
        Ok(geometry)
    }

    /// The geometry of the paper's experimental arrays: ~5 nm films inside a
    /// 0.8 µm cave (the academic 0.8 µm photolithography of Section 3.1),
    /// 300 nm tall spacers, giving a nanowire pitch of 10 nm — the value the
    /// simulation platform uses for `P_N`.
    #[must_use]
    pub fn paper_default() -> Self {
        SpacerGeometry {
            poly_thickness: Nanometers::new(5.0),
            oxide_thickness: Nanometers::new(5.0),
            cave_width: Nanometers::from_micrometers(0.8),
            spacer_height: Nanometers::new(300.0),
        }
    }

    /// Poly-Si (nanowire) film thickness.
    #[must_use]
    pub fn poly_thickness(&self) -> Nanometers {
        self.poly_thickness
    }

    /// SiO₂ (insulator) film thickness.
    #[must_use]
    pub fn oxide_thickness(&self) -> Nanometers {
        self.oxide_thickness
    }

    /// Width of the lithographically defined cave.
    #[must_use]
    pub fn cave_width(&self) -> Nanometers {
        self.cave_width
    }

    /// Spacer height (left at ~300 nm by the paper; does not affect pitch).
    #[must_use]
    pub fn spacer_height(&self) -> Nanometers {
        self.spacer_height
    }

    /// The nanowire pitch `P_N`: one poly-Si plus one SiO₂ film. The pitch
    /// depends only on film thicknesses — the key density advantage of the
    /// MSPT.
    #[must_use]
    pub fn nanowire_pitch(&self) -> Nanometers {
        self.poly_thickness + self.oxide_thickness
    }

    /// How many nanowires fit in one *half* cave (the structure is symmetric
    /// about the cave axis; decoder design only ever considers half caves).
    #[must_use]
    pub fn nanowires_per_half_cave(&self) -> usize {
        let half_width = self.cave_width.value() / 2.0;
        (half_width / self.nanowire_pitch().value()).floor() as usize
    }

    /// How many spacer-definition iterations (poly-Si + SiO₂ pairs) the cave
    /// needs; the MSPT defines both half caves simultaneously, so this equals
    /// the nanowires per half cave.
    #[must_use]
    pub fn definition_iterations(&self) -> usize {
        self.nanowires_per_half_cave()
    }

    /// The aspect ratio of a poly-Si spacer (height / width); very tall thin
    /// spacers are mechanically fragile, which is why the paper dopes them
    /// with light doses.
    #[must_use]
    pub fn spacer_aspect_ratio(&self) -> f64 {
        self.spacer_height.value() / self.poly_thickness.value()
    }
}

impl Default for SpacerGeometry {
    fn default() -> Self {
        SpacerGeometry::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        let bad = SpacerGeometry::new(
            Nanometers::new(0.0),
            Nanometers::new(5.0),
            Nanometers::new(800.0),
            Nanometers::new(300.0),
        );
        assert!(bad.is_err());
        let too_narrow = SpacerGeometry::new(
            Nanometers::new(5.0),
            Nanometers::new(5.0),
            Nanometers::new(10.0),
            Nanometers::new(300.0),
        );
        assert!(too_narrow.is_err());
        assert!(SpacerGeometry::new(
            Nanometers::new(5.0),
            Nanometers::new(5.0),
            Nanometers::new(-3.0),
            Nanometers::new(300.0),
        )
        .is_err());
    }

    #[test]
    fn paper_default_matches_simulation_parameters() {
        let geometry = SpacerGeometry::paper_default();
        assert_eq!(geometry.nanowire_pitch(), Nanometers::new(10.0));
        assert_eq!(geometry.nanowires_per_half_cave(), 40);
        assert_eq!(geometry.definition_iterations(), 40);
        assert_eq!(geometry, SpacerGeometry::default());
    }

    #[test]
    fn pitch_is_independent_of_cave_width_and_height() {
        let narrow = SpacerGeometry::new(
            Nanometers::new(7.0),
            Nanometers::new(3.0),
            Nanometers::new(200.0),
            Nanometers::new(300.0),
        )
        .unwrap();
        let wide = SpacerGeometry::new(
            Nanometers::new(7.0),
            Nanometers::new(3.0),
            Nanometers::new(2000.0),
            Nanometers::new(150.0),
        )
        .unwrap();
        assert_eq!(narrow.nanowire_pitch(), wide.nanowire_pitch());
        assert!(wide.nanowires_per_half_cave() > narrow.nanowires_per_half_cave());
    }

    #[test]
    fn aspect_ratio_and_accessors() {
        let geometry = SpacerGeometry::paper_default();
        assert!((geometry.spacer_aspect_ratio() - 60.0).abs() < 1e-12);
        assert_eq!(geometry.poly_thickness(), Nanometers::new(5.0));
        assert_eq!(geometry.oxide_thickness(), Nanometers::new(5.0));
        assert_eq!(geometry.cave_width(), Nanometers::new(800.0));
        assert_eq!(geometry.spacer_height(), Nanometers::new(300.0));
    }
}
