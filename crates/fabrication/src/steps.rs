//! The step doping matrix `S` (Definition 3) and Proposition 2: the doses
//! applied by the lithography/doping procedure that follows the definition of
//! every spacer, and the multi-linear relation `D_i^j = Σ_{k≥i} S_k^j`.
//!
//! Nanowire `i` is defined at MSPT iteration `i`; the doping procedure of
//! iteration `k` also hits every nanowire defined earlier (`i ≤ k`), so the
//! final doping of nanowire `i` is the sum of the doses of steps `i..N`.
//! Inverting the relation gives `S_i = D_i − D_{i+1}` (with `D_N = 0`), which
//! proves constructively that a set of doping profiles exists for *any*
//! pattern — the existence question raised in Section 3.3.

use serde::{Deserialize, Serialize};

use device_physics::DopingLadder;

use crate::doping::FinalDopingMatrix;
use crate::error::Result;
use crate::matrix::Matrix;
use crate::pattern::PatternMatrix;

/// Relative tolerance used when comparing doping doses for equality (doses
/// are differences of ladder levels, so equal doses are bit-identical in
/// practice; the tolerance only guards against accumulated rounding when a
/// ladder is produced by the numeric solver).
pub const DOSE_EQUALITY_TOLERANCE: f64 = 1e-9;

/// The step doping matrix `S ∈ ℝ^{N×M}`: row `i` holds the doses applied by
/// the lithography/doping procedure that follows the definition of nanowire
/// `i`. Positive doses are p-type, negative doses n-type (Example 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepDopingMatrix {
    doses: Matrix<f64>,
}

impl StepDopingMatrix {
    /// Derives the step matrix from a final doping matrix:
    /// `S_i = D_i − D_{i+1}` with `D_N = 0` (the constructive inverse of
    /// Proposition 2).
    #[must_use]
    pub fn from_final(doping: &FinalDopingMatrix) -> Self {
        let n = doping.nanowire_count();
        let m = doping.region_count();
        let d = doping.as_matrix();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::with_capacity(m);
            for j in 0..m {
                let here = *d.get(i, j).expect("in range");
                let next = if i + 1 < n {
                    *d.get(i + 1, j).expect("in range")
                } else {
                    0.0
                };
                row.push(here - next);
            }
            rows.push(row);
        }
        StepDopingMatrix {
            doses: Matrix::from_rows(rows).expect("same shape as D"),
        }
    }

    /// Convenience constructor: pattern → doping (via the ladder) → steps.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`FinalDopingMatrix::from_pattern`].
    pub fn from_pattern(pattern: &PatternMatrix, ladder: &DopingLadder) -> Result<Self> {
        Ok(StepDopingMatrix::from_final(
            &FinalDopingMatrix::from_pattern(pattern, ladder)?,
        ))
    }

    /// Builds a step matrix directly from doses given in 10¹⁸ cm⁻³, as
    /// quoted in the paper's worked examples.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FabricationError::InvalidMatrixShape`] for ragged or
    /// empty rows.
    pub fn from_rows_1e18(rows: Vec<Vec<f64>>) -> Result<Self> {
        let scaled: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|row| row.into_iter().map(|v| v * 1e18).collect())
            .collect();
        Ok(StepDopingMatrix {
            doses: Matrix::from_rows(scaled)?,
        })
    }

    /// Number of doping procedures (= number of nanowires `N`).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.doses.rows()
    }

    /// Number of doping regions `M`.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.doses.columns()
    }

    /// The dose `S_i^j` applied at step `i` to region `j` (cm⁻³, signed).
    ///
    /// # Errors
    ///
    /// Returns [`crate::FabricationError::IndexOutOfBounds`] for invalid
    /// positions.
    pub fn dose(&self, step: usize, region: usize) -> Result<f64> {
        Ok(*self.doses.get(step, region)?)
    }

    /// The doses of step `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `step >= step_count()`.
    #[must_use]
    pub fn step_doses(&self, step: usize) -> &[f64] {
        self.doses.row(step)
    }

    /// The underlying matrix in cm⁻³.
    #[must_use]
    pub fn as_matrix(&self) -> &Matrix<f64> {
        &self.doses
    }

    /// The matrix expressed in units of 10¹⁸ cm⁻³ (the paper's convention).
    #[must_use]
    pub fn in_1e18(&self) -> Matrix<f64> {
        self.doses.map(|v| v / 1e18)
    }

    /// Whether a dose is non-zero up to [`DOSE_EQUALITY_TOLERANCE`], relative
    /// to the largest dose magnitude of the matrix.
    #[must_use]
    pub fn is_nonzero_dose(&self, value: f64) -> bool {
        let scale = self
            .doses
            .iter()
            .fold(0.0f64, |acc, &v| acc.max(v.abs()))
            .max(1.0);
        value.abs() > DOSE_EQUALITY_TOLERANCE * scale
    }

    /// Reconstructs the final doping matrix by accumulating the steps:
    /// `D_i^j = Σ_{k≥i} S_k^j` — Proposition 2 in the forward direction.
    #[must_use]
    pub fn accumulate(&self) -> FinalDopingMatrix {
        let n = self.step_count();
        let m = self.region_count();
        let mut rows = vec![vec![0.0; m]; n];
        // Accumulate from the last step backwards so each row is the suffix
        // sum of the step doses.
        let mut suffix = vec![0.0; m];
        for i in (0..n).rev() {
            for (j, acc) in suffix.iter_mut().enumerate() {
                *acc += *self.doses.get(i, j).expect("in range");
            }
            rows[i] = suffix.clone();
        }
        FinalDopingMatrix::from_rows_1e18(
            rows.into_iter()
                .map(|row| row.into_iter().map(|v| v / 1e18).collect())
                .collect(),
        )
        .expect("shape preserved")
    }

    /// The number of distinct non-zero doses of every step — the per-step
    /// lithography/doping count `φ_i` of Definition 4.
    #[must_use]
    pub fn distinct_doses_per_step(&self) -> Vec<usize> {
        let scale = self
            .doses
            .iter()
            .fold(0.0f64, |acc, &v| acc.max(v.abs()))
            .max(1.0);
        let tol = DOSE_EQUALITY_TOLERANCE * scale;
        (0..self.step_count())
            .map(|i| {
                let mut distinct: Vec<f64> = Vec::new();
                for &dose in self.doses.row(i) {
                    if dose.abs() <= tol {
                        continue;
                    }
                    if !distinct.iter().any(|&d| (d - dose).abs() <= tol) {
                        distinct.push(dose);
                    }
                }
                distinct.len()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::LogicLevel;

    fn paper_pattern() -> PatternMatrix {
        PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
            LogicLevel::TERNARY,
        )
        .unwrap()
    }

    fn gray_pattern() -> PatternMatrix {
        // Example 5: the Gray-code alternative to the same pattern set.
        PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 2, 1, 0]],
            LogicLevel::TERNARY,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_2_step_matrix() {
        let steps =
            StepDopingMatrix::from_pattern(&paper_pattern(), &DopingLadder::paper_example())
                .unwrap();
        let s = steps.in_1e18();
        assert_eq!(s.row(0), &[0.0, -5.0, 0.0, 2.0]);
        assert_eq!(s.row(1), &[-2.0, 7.0, 5.0, -7.0]);
        assert_eq!(s.row(2), &[4.0, 2.0, 4.0, 9.0]);
    }

    #[test]
    fn paper_example_5_gray_step_matrix() {
        let steps = StepDopingMatrix::from_pattern(&gray_pattern(), &DopingLadder::paper_example())
            .unwrap();
        let s = steps.in_1e18();
        assert_eq!(s.row(0), &[0.0, -5.0, 0.0, 2.0]);
        assert_eq!(s.row(1), &[-2.0, 0.0, 5.0, 0.0]);
        assert_eq!(s.row(2), &[4.0, 9.0, 4.0, 2.0]);
    }

    #[test]
    fn accumulation_recovers_the_final_doping_matrix() {
        for pattern in [paper_pattern(), gray_pattern()] {
            let ladder = DopingLadder::paper_example();
            let doping = FinalDopingMatrix::from_pattern(&pattern, &ladder).unwrap();
            let steps = StepDopingMatrix::from_final(&doping);
            let reconstructed = steps.accumulate();
            let original = doping.in_1e18();
            let recovered = reconstructed.in_1e18();
            for i in 0..doping.nanowire_count() {
                for j in 0..doping.region_count() {
                    assert!(
                        (original.get(i, j).unwrap() - recovered.get(i, j).unwrap()).abs() < 1e-9,
                        "mismatch at ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn distinct_dose_counts_match_example_3() {
        let steps =
            StepDopingMatrix::from_pattern(&paper_pattern(), &DopingLadder::paper_example())
                .unwrap();
        // Example 3: φ = (2, 4, 3) — note the paper indexes steps from 1.
        assert_eq!(steps.distinct_doses_per_step(), vec![2, 4, 3]);
    }

    #[test]
    fn distinct_dose_counts_match_example_6_for_the_gray_code() {
        let steps = StepDopingMatrix::from_pattern(&gray_pattern(), &DopingLadder::paper_example())
            .unwrap();
        // Example 6: φ = (2, 2, 3), Φ = 7.
        assert_eq!(steps.distinct_doses_per_step(), vec![2, 2, 3]);
    }

    #[test]
    fn explicit_constructor_and_accessors() {
        let steps = StepDopingMatrix::from_rows_1e18(vec![
            vec![0.0, -5.0, 0.0, 2.0],
            vec![-2.0, 7.0, 5.0, -7.0],
            vec![4.0, 2.0, 4.0, 9.0],
        ])
        .unwrap();
        assert_eq!(steps.step_count(), 3);
        assert_eq!(steps.region_count(), 4);
        assert!((steps.dose(1, 1).unwrap() - 7e18).abs() < 1.0);
        assert!(steps.dose(5, 0).is_err());
        assert_eq!(steps.step_doses(2).len(), 4);
        assert!(steps.is_nonzero_dose(2e18));
        assert!(!steps.is_nonzero_dose(0.0));
        assert!(StepDopingMatrix::from_rows_1e18(vec![]).is_err());
    }

    #[test]
    fn last_step_equals_last_nanowire_doping() {
        // S_{N-1} = D_{N-1}: the last nanowire only receives its own doses.
        let ladder = DopingLadder::paper_example();
        let doping = FinalDopingMatrix::from_pattern(&paper_pattern(), &ladder).unwrap();
        let steps = StepDopingMatrix::from_final(&doping);
        let last = steps.step_count() - 1;
        for j in 0..steps.region_count() {
            assert_eq!(
                steps.dose(last, j).unwrap(),
                doping.level(last, j).unwrap().value()
            );
        }
    }
}
