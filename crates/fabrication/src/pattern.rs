//! The pattern matrix `P` (Definition 1): the `N × M` matrix of
//! threshold-voltage digits of the `N` nanowires of a half cave, each with
//! `M` doping regions.

use serde::{Deserialize, Serialize};

use nanowire_codes::{CodeSequence, CodeWord, LogicLevel};

use crate::error::{FabricationError, Result};
use crate::matrix::Matrix;

/// The pattern matrix `P ∈ {0, …, n−1}^{N×M}` of a half cave.
///
/// Row `i` is the pattern (code word) of nanowire `i`; nanowire `0` is the
/// one defined *first* by the MSPT flow, which is why it accumulates the most
/// doping operations.
///
/// # Examples
///
/// ```
/// use mspt_fabrication::PatternMatrix;
/// use nanowire_codes::LogicLevel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Example 1 of the paper (n = 3, N = 3, M = 4).
/// let pattern = PatternMatrix::from_rows(
///     vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
///     LogicLevel::TERNARY,
/// )?;
/// assert_eq!(pattern.nanowire_count(), 3);
/// assert_eq!(pattern.region_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternMatrix {
    digits: Matrix<u8>,
    radix: LogicLevel,
}

impl PatternMatrix {
    /// Creates a pattern matrix from raw digit rows.
    ///
    /// # Errors
    ///
    /// * [`FabricationError::InvalidMatrixShape`] when the rows are ragged or
    ///   empty.
    /// * [`FabricationError::Code`] when a digit does not fit the radix.
    pub fn from_rows(rows: Vec<Vec<u8>>, radix: LogicLevel) -> Result<Self> {
        for row in &rows {
            for &digit in row {
                radix.check_digit(digit)?;
            }
        }
        Ok(PatternMatrix {
            digits: Matrix::from_rows(rows)?,
            radix,
        })
    }

    /// Creates a pattern matrix from an ordered code sequence: word `i`
    /// becomes the pattern of nanowire `i`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::InvalidMatrixShape`] for an empty
    /// sequence (cannot happen for sequences built by `nanowire-codes`).
    pub fn from_sequence(sequence: &CodeSequence) -> Result<Self> {
        let rows: Vec<Vec<u8>> = sequence.iter().map(CodeWord::values).collect();
        PatternMatrix::from_rows(rows, sequence.radix())
    }

    /// The number of nanowires `N` (matrix rows).
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.digits.rows()
    }

    /// The number of doping regions `M` per nanowire (matrix columns).
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.digits.columns()
    }

    /// The logic radix `n`.
    #[must_use]
    pub fn radix(&self) -> LogicLevel {
        self.radix
    }

    /// The digit `P_i^j` of nanowire `i`, region `j`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::IndexOutOfBounds`] when the position is
    /// outside the matrix.
    pub fn digit(&self, nanowire: usize, region: usize) -> Result<u8> {
        Ok(*self.digits.get(nanowire, region)?)
    }

    /// The pattern of nanowire `i` as a digit slice.
    ///
    /// # Panics
    ///
    /// Panics when `nanowire >= nanowire_count()`.
    #[must_use]
    pub fn nanowire_pattern(&self, nanowire: usize) -> &[u8] {
        self.digits.row(nanowire)
    }

    /// The pattern of nanowire `i` as a [`CodeWord`].
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::IndexOutOfBounds`] when the nanowire does
    /// not exist.
    pub fn nanowire_word(&self, nanowire: usize) -> Result<CodeWord> {
        if nanowire >= self.nanowire_count() {
            return Err(FabricationError::IndexOutOfBounds {
                row: nanowire,
                column: 0,
                rows: self.nanowire_count(),
                columns: self.region_count(),
            });
        }
        Ok(CodeWord::from_values(
            self.digits.row(nanowire),
            self.radix,
        )?)
    }

    /// The underlying digit matrix.
    #[must_use]
    pub fn digits(&self) -> &Matrix<u8> {
        &self.digits
    }

    /// The rows of the matrix as a [`CodeSequence`], in nanowire order.
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::Code`] if the rows are not mutually
    /// compatible (cannot happen for a constructed matrix).
    pub fn to_sequence(&self) -> Result<CodeSequence> {
        let words: std::result::Result<Vec<CodeWord>, _> = self
            .digits
            .iter_rows()
            .map(|row| CodeWord::from_values(row, self.radix))
            .collect();
        Ok(CodeSequence::new(words?)?)
    }

    /// Number of positions at which the patterns of nanowires `i` and `i+1`
    /// differ, for every `i` — the transition profile that drives both cost
    /// functions.
    #[must_use]
    pub fn row_transitions(&self) -> Vec<usize> {
        (0..self.nanowire_count().saturating_sub(1))
            .map(|i| {
                self.digits
                    .row(i)
                    .iter()
                    .zip(self.digits.row(i + 1))
                    .filter(|(a, b)| a != b)
                    .count()
            })
            .collect()
    }

    /// Whether the digit of region `j` differs between nanowires `i` and
    /// `i+1` (used by the variability and complexity derivations).
    ///
    /// # Errors
    ///
    /// Returns [`FabricationError::IndexOutOfBounds`] for invalid positions.
    pub fn changes_between(&self, nanowire: usize, region: usize) -> Result<bool> {
        let here = self.digit(nanowire, region)?;
        let next = self.digit(nanowire + 1, region)?;
        Ok(here != next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{reflected_gray_code, CodeKind, CodeSpec};

    fn paper_pattern() -> PatternMatrix {
        PatternMatrix::from_rows(
            vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
            LogicLevel::TERNARY,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_digits_and_shape() {
        assert!(paper_pattern().nanowire_count() == 3);
        assert!(PatternMatrix::from_rows(vec![vec![0, 3]], LogicLevel::TERNARY).is_err());
        assert!(PatternMatrix::from_rows(vec![vec![0, 1], vec![1]], LogicLevel::TERNARY).is_err());
        assert!(PatternMatrix::from_rows(vec![], LogicLevel::BINARY).is_err());
    }

    #[test]
    fn accessors_match_paper_example() {
        let p = paper_pattern();
        assert_eq!(p.region_count(), 4);
        assert_eq!(p.radix(), LogicLevel::TERNARY);
        assert_eq!(p.digit(0, 2).unwrap(), 2);
        assert_eq!(p.digit(2, 0).unwrap(), 1);
        assert!(p.digit(3, 0).is_err());
        assert_eq!(p.nanowire_pattern(1), &[0, 2, 2, 0]);
        assert_eq!(p.nanowire_word(2).unwrap().to_string(), "1012");
        assert!(p.nanowire_word(5).is_err());
    }

    #[test]
    fn sequence_roundtrip() {
        let gc = reflected_gray_code(LogicLevel::BINARY, 8).unwrap();
        let pattern = PatternMatrix::from_sequence(&gc).unwrap();
        assert_eq!(pattern.nanowire_count(), gc.len());
        assert_eq!(pattern.region_count(), 8);
        let back = pattern.to_sequence().unwrap();
        assert_eq!(back, gc);
    }

    #[test]
    fn row_transitions_match_code_transitions() {
        let spec = CodeSpec::new(CodeKind::Gray, LogicLevel::TERNARY, 6).unwrap();
        let seq = spec.generate().unwrap();
        let pattern = PatternMatrix::from_sequence(&seq).unwrap();
        assert_eq!(
            pattern.row_transitions().iter().sum::<usize>(),
            seq.total_transitions()
        );
    }

    #[test]
    fn change_detection() {
        let p = paper_pattern();
        // Between nanowires 0 and 1: digits 1 and 3 change (values 1->2, 1->0).
        assert!(!p.changes_between(0, 0).unwrap());
        assert!(p.changes_between(0, 1).unwrap());
        assert!(!p.changes_between(0, 2).unwrap());
        assert!(p.changes_between(0, 3).unwrap());
        assert!(p.changes_between(2, 0).is_err());
    }
}
