//! # mspt-fabrication
//!
//! The Multi-Spacer Patterning Technique (MSPT) fabrication model of the
//! DAC 2009 paper: the abstract matrices of Section 4 — pattern `P`, final
//! doping `D`, step doping `S` — together with the two cost functions the
//! decoder design optimises, fabrication complexity `Φ` (Definition 4) and
//! variability `Σ` (Definition 5), and an event-level process-flow simulator
//! that audits the algebra end-to-end.
//!
//! The central constraint of the MSPT decoder is that nanowires are patterned
//! *while the array is being built*: the doping procedure that patterns
//! nanowire `i` also hits every nanowire defined before it. Proposition 2
//! (`D_i = Σ_{k≥i} S_k`) captures this, and its constructive inverse
//! (`S_i = D_i − D_{i+1}`) shows a valid dose schedule exists for any
//! pattern.
//!
//! # Examples
//!
//! Reproducing Examples 1–4 of the paper:
//!
//! ```
//! use device_physics::{DopingLadder, VariabilityModel};
//! use mspt_fabrication::{
//!     FabricationCost, PatternMatrix, StepDopingMatrix, VariabilityMatrix,
//! };
//! use nanowire_codes::LogicLevel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pattern = PatternMatrix::from_rows(
//!     vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
//!     LogicLevel::TERNARY,
//! )?;
//! let ladder = DopingLadder::paper_example();
//!
//! let cost = FabricationCost::from_pattern(&pattern, &ladder)?;
//! assert_eq!(cost.total(), 9); // Example 3
//!
//! let variability = VariabilityMatrix::from_pattern(
//!     &pattern,
//!     &ladder,
//!     &VariabilityModel::paper_default(),
//! )?;
//! assert_eq!(variability.l1_norm_in_sigma_units(), 22); // Example 4
//!
//! let steps = StepDopingMatrix::from_pattern(&pattern, &ladder)?;
//! assert_eq!(steps.in_1e18().row(0), &[0.0, -5.0, 0.0, 2.0]); // Example 2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod complexity;
mod doping;
mod error;
mod matrix;
mod pattern;
mod process;
mod spacer;
mod steps;
mod variability;

pub use complexity::{relative_saving, FabricationCost};
pub use doping::{nominal_threshold, threshold_matrix, FinalDopingMatrix};
pub use error::{FabricationError, Result};
pub use matrix::Matrix;
pub use pattern::PatternMatrix;
pub use process::{FabricationPlan, ProcessAudit, ProcessEvent, ReplayedArray};
pub use spacer::SpacerGeometry;
pub use steps::{StepDopingMatrix, DOSE_EQUALITY_TOLERANCE};
pub use variability::{relative_variability_reduction, DoseCountMatrix, VariabilityMatrix};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PatternMatrix>();
        assert_send_sync::<FinalDopingMatrix>();
        assert_send_sync::<StepDopingMatrix>();
        assert_send_sync::<FabricationCost>();
        assert_send_sync::<VariabilityMatrix>();
        assert_send_sync::<FabricationPlan>();
        assert_send_sync::<SpacerGeometry>();
        assert_send_sync::<FabricationError>();
    }
}
