//! Property-based tests of the MSPT fabrication algebra: the paper's
//! Propositions 1–5 hold for arbitrary patterns and code choices.

use device_physics::{DopingLadder, ThresholdModel, VariabilityModel, Volts};
use mspt_fabrication::{
    DoseCountMatrix, FabricationCost, FabricationPlan, FinalDopingMatrix, PatternMatrix,
    StepDopingMatrix, VariabilityMatrix,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
use proptest::prelude::*;

/// Strategy producing random pattern matrices with N in 2..=8 and M in 2..=6.
fn pattern_strategy() -> impl Strategy<Value = (PatternMatrix, LogicLevel)> {
    (2u8..=4, 2usize..=8, 2usize..=6).prop_flat_map(|(radix, n, m)| {
        let level = LogicLevel::new(radix).unwrap();
        proptest::collection::vec(proptest::collection::vec(0..radix, m), n)
            .prop_map(move |rows| (PatternMatrix::from_rows(rows, level).unwrap(), level))
    })
}

fn ladder_for(radix: LogicLevel) -> DopingLadder {
    DopingLadder::from_model(
        &ThresholdModel::default_mspt(),
        radix.radix_usize(),
        (Volts::new(0.0), Volts::new(1.0)),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proposition 2 round-trip: S accumulates back to D for any pattern.
    #[test]
    fn steps_accumulate_to_final_doping((pattern, radix) in pattern_strategy()) {
        let ladder = ladder_for(radix);
        let doping = FinalDopingMatrix::from_pattern(&pattern, &ladder).unwrap();
        let steps = StepDopingMatrix::from_final(&doping);
        let reconstructed = steps.accumulate();
        let scale = doping.as_matrix().iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        for i in 0..pattern.nanowire_count() {
            for j in 0..pattern.region_count() {
                let original = doping.level(i, j).unwrap().value();
                let recovered = reconstructed.level(i, j).unwrap().value();
                prop_assert!((original - recovered).abs() < 1e-9 * scale);
            }
        }
    }

    /// Proposition 1: the digit → doping map is invertible for any pattern.
    #[test]
    fn doping_decodes_back_to_the_pattern((pattern, radix) in pattern_strategy()) {
        let ladder = ladder_for(radix);
        let doping = FinalDopingMatrix::from_pattern(&pattern, &ladder).unwrap();
        let decoded = doping.decode_pattern(&ladder).unwrap();
        prop_assert_eq!(decoded, pattern);
    }

    /// The dose count of every region equals 1 + the number of digit changes
    /// below it in its column (the recurrence in the proof of Proposition 4),
    /// and dose counts are monotone non-increasing along the definition
    /// order.
    #[test]
    fn dose_counts_follow_column_transitions((pattern, radix) in pattern_strategy()) {
        let ladder = ladder_for(radix);
        let doses = DoseCountMatrix::from_pattern(&pattern, &ladder).unwrap();
        let n = pattern.nanowire_count();
        let m = pattern.region_count();
        for j in 0..m {
            prop_assert_eq!(doses.count(n - 1, j).unwrap(), 1);
            for i in (0..n - 1).rev() {
                let expected = doses.count(i + 1, j).unwrap()
                    + usize::from(pattern.digit(i, j).unwrap() != pattern.digit(i + 1, j).unwrap());
                prop_assert_eq!(doses.count(i, j).unwrap(), expected);
            }
        }
    }

    /// ‖Σ‖₁ (in σ² units) equals N·M plus the weighted sum of transitions:
    /// each digit change between rows i and i+1 adds (i+1) doses.
    #[test]
    fn l1_norm_matches_transition_weighting((pattern, radix) in pattern_strategy()) {
        let ladder = ladder_for(radix);
        let doses = DoseCountMatrix::from_pattern(&pattern, &ladder).unwrap();
        let n = pattern.nanowire_count();
        let m = pattern.region_count();
        // Summing the recurrence ν_i = ν_{i+1} + [change] over the column:
        // total = Σ_j (N + Σ_{i<N-1} (i+1)·[change at boundary i in column j]).
        let mut expected = 0;
        for j in 0..m {
            expected += n; // the baseline 1 for every row in this column
            for i in 0..n - 1 {
                if pattern.digit(i, j).unwrap() != pattern.digit(i + 1, j).unwrap() {
                    expected += i + 1;
                }
            }
        }
        prop_assert_eq!(doses.total(), expected);
    }

    /// The fabrication plan audit passes for any pattern: the event-level
    /// replay reproduces D, ν and Φ.
    #[test]
    fn fabrication_plan_audits_cleanly((pattern, radix) in pattern_strategy()) {
        let ladder = ladder_for(radix);
        let plan = FabricationPlan::for_pattern(&pattern, &ladder).unwrap();
        let audit = plan.audit(&pattern, &ladder).unwrap();
        prop_assert_eq!(audit.lithography_passes, audit.fabrication_cost.total());
    }

    /// φ_i is bounded by the number of possible distinct doses:
    /// at most min(M, n·(n-1)+... ) — in particular never more than M, and
    /// zero only when two successive patterns are identical.
    #[test]
    fn per_step_cost_is_bounded((pattern, radix) in pattern_strategy()) {
        let ladder = ladder_for(radix);
        let cost = FabricationCost::from_pattern(&pattern, &ladder).unwrap();
        let m = pattern.region_count();
        for (i, &phi) in cost.per_step().iter().enumerate() {
            prop_assert!(phi <= m);
            if i + 1 < pattern.nanowire_count() {
                let identical = pattern.nanowire_pattern(i) == pattern.nanowire_pattern(i + 1);
                prop_assert_eq!(phi == 0, identical);
            }
        }
    }

    /// Binary patterns never need more than two distinct doses per step
    /// (Fig. 5: Φ is constant for binary codes).
    #[test]
    fn binary_steps_use_at_most_two_doses(
        rows in proptest::collection::vec(proptest::collection::vec(0u8..2, 6), 2..10)
    ) {
        let pattern = PatternMatrix::from_rows(rows, LogicLevel::BINARY).unwrap();
        let ladder = ladder_for(LogicLevel::BINARY);
        let cost = FabricationCost::from_pattern(&pattern, &ladder).unwrap();
        for &phi in cost.per_step() {
            prop_assert!(phi <= 2);
        }
    }

    /// Proposition 4/5 on full spaces: the Gray arrangement never costs more
    /// than the lexicographic tree arrangement, in either metric.
    #[test]
    fn gray_never_worse_than_tree(
        radix in prop_oneof![Just(LogicLevel::BINARY), Just(LogicLevel::TERNARY)],
        code_length in prop_oneof![Just(4usize), Just(6usize)],
        nanowires in 3usize..20,
    ) {
        let ladder = ladder_for(radix);
        let model = VariabilityModel::paper_default();
        let tree = CodeSpec::new(CodeKind::Tree, radix, code_length).unwrap()
            .generate().unwrap().take_cyclic(nanowires).unwrap();
        let gray = CodeSpec::new(CodeKind::Gray, radix, code_length).unwrap()
            .generate().unwrap().take_cyclic(nanowires).unwrap();
        let tree_cost = FabricationCost::from_sequence(&tree, &ladder).unwrap();
        let gray_cost = FabricationCost::from_sequence(&gray, &ladder).unwrap();
        prop_assert!(gray_cost.total() <= tree_cost.total());
        let tree_var = VariabilityMatrix::from_sequence(&tree, &ladder, &model).unwrap();
        let gray_var = VariabilityMatrix::from_sequence(&gray, &ladder, &model).unwrap();
        prop_assert!(gray_var.l1_norm_in_sigma_units() <= tree_var.l1_norm_in_sigma_units());
    }
}
