//! The electrical addressing model of the decoder (Section 2.2 and Fig. 1.c):
//! mesowires apply a voltage pattern over the doping regions; a nanowire
//! conducts only if *every* one of its regions is turned on, i.e. its
//! threshold level does not exceed the applied level.
//!
//! Under this model a code word `p` conducts under an applied word `a`
//! exactly when `p ≤ a` component-wise. A set of code words addresses its
//! nanowires *uniquely* when applying any word of the set turns on exactly
//! one nanowire — equivalently when the set is an **antichain** under the
//! component-wise order. This is precisely why tree codes must be reflected
//! (Section 2.3) and why hot codes need no reflection: both families are
//! antichains, while the raw tree code is a chain.

use serde::{Deserialize, Serialize};

use nanowire_codes::{CodeSequence, CodeWord};

use crate::error::{CrossbarError, Result};

/// The outcome of applying a voltage pattern to a contact group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressOutcome {
    /// Exactly one nanowire conducts — the address is valid.
    Unique(usize),
    /// No nanowire conducts.
    None,
    /// More than one nanowire conducts — the address is ambiguous.
    Multiple(Vec<usize>),
}

impl AddressOutcome {
    /// The addressed nanowire, if the outcome is unique.
    #[must_use]
    pub fn unique(&self) -> Option<usize> {
        match self {
            AddressOutcome::Unique(index) => Some(*index),
            _ => None,
        }
    }
}

/// Whether a nanowire with pattern `pattern` conducts when the applied
/// voltage pattern is `applied`: every region's threshold level must not
/// exceed the applied level.
///
/// # Errors
///
/// Returns [`CrossbarError::Code`] when the two words have different lengths
/// or radices.
pub fn conducts(pattern: &CodeWord, applied: &CodeWord) -> Result<bool> {
    // transitions_to validates compatibility; we then compare digit-wise.
    pattern.transitions_to(applied)?;
    Ok(pattern
        .digits()
        .iter()
        .zip(applied.digits())
        .all(|(p, a)| p.value() <= a.value()))
}

/// Applies a voltage pattern to a group of nanowires and reports which of
/// them conduct.
///
/// # Errors
///
/// Returns [`CrossbarError::Code`] when a pattern is incompatible with the
/// applied word.
pub fn apply_address(patterns: &[CodeWord], applied: &CodeWord) -> Result<AddressOutcome> {
    let mut conducting = Vec::new();
    for (index, pattern) in patterns.iter().enumerate() {
        if conducts(pattern, applied)? {
            conducting.push(index);
        }
    }
    Ok(match conducting.len() {
        0 => AddressOutcome::None,
        1 => AddressOutcome::Unique(conducting[0]),
        _ => AddressOutcome::Multiple(conducting),
    })
}

/// Checks that a code sequence addresses its nanowires uniquely: applying any
/// word of the sequence as the voltage pattern turns on exactly the nanowire
/// carrying that word. Equivalent to the sequence being an antichain with
/// distinct words.
///
/// # Errors
///
/// * [`CrossbarError::NotUniquelyAddressable`] naming the first conflicting
///   pair.
/// * [`CrossbarError::Code`] for incompatible words (cannot happen inside a
///   constructed sequence).
pub fn check_unique_addressing(sequence: &CodeSequence) -> Result<()> {
    let words = sequence.words();
    for (i, a) in words.iter().enumerate() {
        for (j, b) in words.iter().enumerate() {
            if i == j {
                continue;
            }
            if conducts(a, b)? {
                return Err(CrossbarError::NotUniquelyAddressable {
                    conflict: format!("{a} also conducts under the address of {b}"),
                });
            }
        }
    }
    Ok(())
}

/// Whether a code sequence addresses its nanowires uniquely (see
/// [`check_unique_addressing`]).
#[must_use]
pub fn is_uniquely_addressable(sequence: &CodeSequence) -> bool {
    check_unique_addressing(sequence).is_ok()
}

/// The number of distinct nanowires a code sequence can uniquely address —
/// its length if it is an antichain of distinct words, otherwise the size of
/// the largest prefix that still is.
#[must_use]
pub fn addressable_prefix_len(sequence: &CodeSequence) -> usize {
    let mut best = 0;
    for len in 1..=sequence.len() {
        let Ok(prefix) = sequence.take_prefix(len) else {
            break;
        };
        if is_uniquely_addressable(&prefix) {
            best = len;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{
        hot_code, reflected_gray_code, reflected_tree_code, tree_code, CodeKind, CodeSpec,
        LogicLevel,
    };

    fn word(values: &[u8], radix: LogicLevel) -> CodeWord {
        CodeWord::from_values(values, radix).unwrap()
    }

    #[test]
    fn conduction_is_componentwise_dominance() {
        let p = word(&[0, 1, 1, 0], LogicLevel::BINARY);
        assert!(conducts(&p, &word(&[0, 1, 1, 0], LogicLevel::BINARY)).unwrap());
        assert!(conducts(&p, &word(&[1, 1, 1, 1], LogicLevel::BINARY)).unwrap());
        assert!(!conducts(&p, &word(&[0, 0, 1, 0], LogicLevel::BINARY)).unwrap());
        assert!(conducts(&p, &word(&[1, 1, 1], LogicLevel::BINARY)).is_err());
    }

    #[test]
    fn reflected_codes_are_uniquely_addressable() {
        for (kind, length) in [
            (CodeKind::Tree, 8),
            (CodeKind::Gray, 8),
            (CodeKind::BalancedGray, 8),
            (CodeKind::Hot, 6),
            (CodeKind::ArrangedHot, 6),
        ] {
            let seq = CodeSpec::new(kind, LogicLevel::BINARY, length)
                .unwrap()
                .generate()
                .unwrap();
            assert!(is_uniquely_addressable(&seq), "{kind:?}");
        }
    }

    #[test]
    fn raw_tree_codes_are_not_uniquely_addressable() {
        // Without reflection the tree code is a chain: 00 conducts whenever
        // 11 is addressed.
        let raw = tree_code(LogicLevel::BINARY, 3).unwrap();
        assert!(!is_uniquely_addressable(&raw));
        let reflected = reflected_tree_code(LogicLevel::BINARY, 6).unwrap();
        assert!(is_uniquely_addressable(&reflected));
    }

    #[test]
    fn applying_a_words_own_pattern_selects_it() {
        let seq = reflected_gray_code(LogicLevel::TERNARY, 6).unwrap();
        for (index, pattern) in seq.words().iter().enumerate() {
            let outcome = apply_address(seq.words(), pattern).unwrap();
            assert_eq!(outcome, AddressOutcome::Unique(index));
            assert_eq!(outcome.unique(), Some(index));
        }
    }

    #[test]
    fn address_outcomes_cover_all_cases() {
        let patterns = vec![
            word(&[0, 1], LogicLevel::BINARY),
            word(&[1, 0], LogicLevel::BINARY),
        ];
        // 11 turns on both nanowires.
        let both = apply_address(&patterns, &word(&[1, 1], LogicLevel::BINARY)).unwrap();
        assert_eq!(both, AddressOutcome::Multiple(vec![0, 1]));
        assert_eq!(both.unique(), None);
        // 00 turns on neither.
        let none = apply_address(&patterns, &word(&[0, 0], LogicLevel::BINARY)).unwrap();
        assert_eq!(none, AddressOutcome::None);
        // 01 selects the first.
        let one = apply_address(&patterns, &word(&[0, 1], LogicLevel::BINARY)).unwrap();
        assert_eq!(one, AddressOutcome::Unique(0));
    }

    #[test]
    fn hot_codes_are_antichains() {
        let hc = hot_code(LogicLevel::TERNARY, 6).unwrap();
        assert!(is_uniquely_addressable(&hc));
    }

    #[test]
    fn addressable_prefix_of_a_chain_is_one() {
        let raw = tree_code(LogicLevel::BINARY, 2).unwrap();
        // 00, 01, 10, 11: the first two words already conflict (00 < 01).
        assert_eq!(addressable_prefix_len(&raw), 1);
        let reflected = reflected_tree_code(LogicLevel::BINARY, 4).unwrap();
        assert_eq!(addressable_prefix_len(&reflected), reflected.len());
    }

    #[test]
    fn unique_addressing_error_names_the_conflict() {
        let raw = tree_code(LogicLevel::BINARY, 2).unwrap();
        let err = check_unique_addressing(&raw).unwrap_err();
        assert!(matches!(err, CrossbarError::NotUniquelyAddressable { .. }));
        assert!(err.to_string().contains("conducts"));
    }
}
