//! The crossbar yield model of Section 6.1: the probability that a nanowire
//! is addressable is the probability that *every* doping region's threshold
//! voltage stays inside its decision window, computed from the accumulated
//! variability `Σ`; nanowires at contact-group boundaries are removed; the
//! cave yield `Y` is the expected fraction of addressable nanowires and the
//! crossbar (crosspoint) yield is `Y²` because both layers must address
//! their nanowire for a crosspoint to be usable.

use serde::{Deserialize, Serialize};

use device_physics::{DopingLadder, VariabilityModel, Volts};
use mspt_fabrication::VariabilityMatrix;

use crate::contact::ContactGroupLayout;
use crate::error::{CrossbarError, Result};

/// Per-nanowire addressability probabilities of one half cave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressabilityProfile {
    probabilities: Vec<f64>,
}

impl AddressabilityProfile {
    /// Wraps explicit per-nanowire probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidProbability`] when a value is outside
    /// `[0, 1]` or the profile is empty.
    pub fn new(probabilities: Vec<f64>) -> Result<Self> {
        if probabilities.is_empty() {
            return Err(CrossbarError::InvalidSpec {
                reason: "addressability profile needs at least one nanowire".to_string(),
            });
        }
        for &p in &probabilities {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(CrossbarError::InvalidProbability { value: p });
            }
        }
        Ok(AddressabilityProfile { probabilities })
    }

    /// Computes the profile analytically from the variability matrix of a
    /// half cave: nanowire `i` is addressable with probability
    /// `∏_j P(|ΔV_T| ≤ window)` where the deviation of region `(i, j)` is
    /// Gaussian with variance `Σ_i^j` (Section 6.1).
    ///
    /// `window` is the **half-width** of the decision interval (the quantity
    /// `DopingLadder::window_half_width` returns) — a region is in-window iff
    /// `|ΔV_T| ≤ window`. The Monte-Carlo validator in `decoder-sim` applies
    /// the identical convention, so the two estimates are directly
    /// comparable. Pass an explicit `window` to study tighter or looser
    /// sensing margins.
    ///
    /// # Errors
    ///
    /// Propagates device-physics errors for invalid windows.
    pub fn from_variability(
        variability: &VariabilityMatrix,
        model: &VariabilityModel,
        window: Volts,
    ) -> Result<Self> {
        let n = variability.nanowire_count();
        let m = variability.region_count();
        let mut probabilities = Vec::with_capacity(n);
        for i in 0..n {
            let mut p = 1.0;
            for j in 0..m {
                let doses = variability.dose_counts().count(i, j)?;
                p *= model.in_window_probability(doses, window)?;
            }
            probabilities.push(p);
        }
        Ok(AddressabilityProfile { probabilities })
    }

    /// Convenience wrapper using the ladder's own decision window.
    ///
    /// # Errors
    ///
    /// Same as [`AddressabilityProfile::from_variability`].
    pub fn from_variability_with_ladder(
        variability: &VariabilityMatrix,
        model: &VariabilityModel,
        ladder: &DopingLadder,
    ) -> Result<Self> {
        Self::from_variability(variability, model, ladder.window_half_width())
    }

    /// The per-nanowire probabilities, in definition order.
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The number of nanowires in the profile.
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.probabilities.len()
    }

    /// The mean addressability probability (ignoring geometric losses).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.probabilities.iter().sum::<f64>() / self.probabilities.len() as f64
    }
}

/// The yield of one cave and of the whole crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaveYield {
    nanowire_yield: f64,
    crossbar_yield: f64,
}

impl CaveYield {
    /// Combines the electrical addressability profile with the contact-group
    /// geometry of the half cave:
    ///
    /// * nanowires beyond the code space of their group contribute nothing;
    /// * every internal group boundary removes (in expectation) the nanowires
    ///   inside the alignment tolerance;
    /// * the remaining nanowires contribute their addressability probability.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when the profile and layout
    /// disagree on the nanowire count.
    pub fn compute(profile: &AddressabilityProfile, layout: &ContactGroupLayout) -> Result<Self> {
        if profile.nanowire_count() != layout.nanowire_count() {
            return Err(CrossbarError::InvalidSpec {
                reason: format!(
                    "profile covers {} nanowires but the layout has {}",
                    profile.nanowire_count(),
                    layout.nanowire_count()
                ),
            });
        }
        let probabilities = profile.probabilities();
        let n = layout.nanowire_count();

        // Electrically weighted sum over the positions that have a code word.
        let mut usable_sum = 0.0;
        for (position, &p) in probabilities.iter().enumerate() {
            let offset = position % layout.nanowires_per_group();
            if offset < layout.addressable_per_group() {
                usable_sum += p;
            }
        }

        // Expected boundary loss: the ambiguous nanowires of every internal
        // boundary, weighted by the local addressability (they would have
        // been usable otherwise).
        let per_boundary = layout.rules().ambiguous_nanowires_per_boundary();
        let mut boundary_loss = 0.0;
        for boundary in layout.internal_boundary_positions() {
            let before = probabilities[boundary.saturating_sub(1)];
            let after = probabilities[boundary.min(n - 1)];
            boundary_loss += per_boundary * 0.5 * (before + after);
        }

        let nanowire_yield = ((usable_sum - boundary_loss) / n as f64).clamp(0.0, 1.0);
        Ok(CaveYield {
            nanowire_yield,
            crossbar_yield: nanowire_yield * nanowire_yield,
        })
    }

    /// The cave (nanowire) yield `Y`: the expected fraction of addressable
    /// nanowires in a half cave.
    #[must_use]
    pub fn nanowire_yield(&self) -> f64 {
        self.nanowire_yield
    }

    /// The crossbar (crosspoint) yield `Y²`: a crosspoint works only if both
    /// the row and the column nanowire are addressable.
    #[must_use]
    pub fn crossbar_yield(&self) -> f64 {
        self.crossbar_yield
    }

    /// The effective density `D_EFF = D_RAW · Y²` (Section 6.1).
    #[must_use]
    pub fn effective_bits(&self, raw_bits: u64) -> f64 {
        raw_bits as f64 * self.crossbar_yield
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LayoutRules;
    use device_physics::ThresholdModel;
    use mspt_fabrication::PatternMatrix;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn profile_for(kind: CodeKind, code_length: usize, nanowires: usize) -> AddressabilityProfile {
        let radix = LogicLevel::BINARY;
        let seq = CodeSpec::new(kind, radix, code_length)
            .unwrap()
            .generate()
            .unwrap()
            .take_cyclic(nanowires)
            .unwrap();
        let ladder = DopingLadder::from_model(
            &ThresholdModel::default_mspt(),
            2,
            (Volts::new(0.0), Volts::new(1.0)),
        )
        .unwrap();
        let model = VariabilityModel::paper_default();
        let variability = VariabilityMatrix::from_pattern(
            &PatternMatrix::from_sequence(&seq).unwrap(),
            &ladder,
            &model,
        )
        .unwrap();
        AddressabilityProfile::from_variability_with_ladder(&variability, &model, &ladder).unwrap()
    }

    #[test]
    fn profile_construction_validates_probabilities() {
        assert!(AddressabilityProfile::new(vec![]).is_err());
        assert!(AddressabilityProfile::new(vec![0.5, 1.2]).is_err());
        assert!(AddressabilityProfile::new(vec![0.5, f64::NAN]).is_err());
        let p = AddressabilityProfile::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(p.nanowire_count(), 2);
        assert!((p.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn analytic_profile_is_within_bounds_and_ordered_by_definition_order() {
        let profile = profile_for(CodeKind::Gray, 8, 20);
        assert_eq!(profile.nanowire_count(), 20);
        for &p in profile.probabilities() {
            assert!((0.0..=1.0).contains(&p));
        }
        // The last-defined nanowire accumulates the fewest doses, so it is at
        // least as reliable as the first-defined one.
        let first = profile.probabilities()[0];
        let last = *profile.probabilities().last().unwrap();
        assert!(last >= first);
    }

    #[test]
    fn gray_codes_yield_at_least_as_much_as_tree_codes() {
        let layout = ContactGroupLayout::new(20, 16, LayoutRules::paper_default()).unwrap();
        let tree = CaveYield::compute(&profile_for(CodeKind::Tree, 8, 20), &layout).unwrap();
        let gray = CaveYield::compute(&profile_for(CodeKind::Gray, 8, 20), &layout).unwrap();
        assert!(gray.nanowire_yield() >= tree.nanowire_yield());
        assert!(gray.crossbar_yield() >= tree.crossbar_yield());
    }

    #[test]
    fn crossbar_yield_is_the_square_of_the_cave_yield() {
        let layout = ContactGroupLayout::new(20, 16, LayoutRules::paper_default()).unwrap();
        let y = CaveYield::compute(&profile_for(CodeKind::BalancedGray, 8, 20), &layout).unwrap();
        assert!((y.crossbar_yield() - y.nanowire_yield().powi(2)).abs() < 1e-12);
        assert!(y.nanowire_yield() > 0.0 && y.nanowire_yield() <= 1.0);
        let effective = y.effective_bits(131_072);
        assert!(effective > 0.0 && effective <= 131_072.0);
    }

    #[test]
    fn perfect_probabilities_reduce_to_the_geometric_fraction() {
        let layout = ContactGroupLayout::new(40, 8, LayoutRules::paper_default()).unwrap();
        let profile = AddressabilityProfile::new(vec![1.0; 40]).unwrap();
        let y = CaveYield::compute(&profile, &layout).unwrap();
        assert!((y.nanowire_yield() - layout.geometric_addressable_fraction()).abs() < 1e-9);
    }

    #[test]
    fn mismatched_profile_and_layout_are_rejected() {
        let layout = ContactGroupLayout::new(40, 8, LayoutRules::paper_default()).unwrap();
        let profile = AddressabilityProfile::new(vec![1.0; 20]).unwrap();
        assert!(CaveYield::compute(&profile, &layout).is_err());
    }

    #[test]
    fn boundary_losses_reduce_the_yield() {
        // Same probabilities, one layout with a single group and one with
        // many groups: the fragmented layout must yield less.
        let profile = AddressabilityProfile::new(vec![0.95; 64]).unwrap();
        let single = ContactGroupLayout::new(64, 64, LayoutRules::paper_default()).unwrap();
        let fragmented = ContactGroupLayout::new(64, 8, LayoutRules::paper_default()).unwrap();
        let y_single = CaveYield::compute(&profile, &single).unwrap();
        let y_fragmented = CaveYield::compute(&profile, &fragmented).unwrap();
        assert!(y_single.nanowire_yield() > y_fragmented.nanowire_yield());
    }
}
