//! A functional crossbar-memory model: crosspoints store bits, and a bit can
//! only be used when *both* the row and the column nanowire are addressable
//! through their decoders (Section 6.1 assumes the crossbar functions as a
//! memory and only decoder defects are considered).

use serde::{Deserialize, Serialize};

use nanowire_codes::{CodeSequence, CodeWord};

use crate::addressing::{apply_address, AddressOutcome};
use crate::contact::{ContactGroupLayout, PositionKind};
use crate::error::{CrossbarError, Result};

/// A small functional crossbar memory: one half cave of row nanowires crossed
/// with one half cave of column nanowires.
///
/// # Examples
///
/// ```
/// use crossbar_array::{ContactGroupLayout, CrossbarMemory, LayoutRules};
/// use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = CodeSpec::new(CodeKind::Hot, LogicLevel::BINARY, 6)?.generate()?;
/// let layout = ContactGroupLayout::new(20, 20, LayoutRules::paper_default())?;
/// let mut memory = CrossbarMemory::new(&code, layout.clone(), &code, layout)?;
/// memory.write(3, 7, true)?;
/// assert_eq!(memory.read(3, 7)?, true);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarMemory {
    row_words: Vec<CodeWord>,
    column_words: Vec<CodeWord>,
    row_kinds: Vec<PositionKind>,
    column_kinds: Vec<PositionKind>,
    row_span: usize,
    column_span: usize,
    bits: Vec<bool>,
}

impl CrossbarMemory {
    /// Builds a memory from the row and column code assignments and their
    /// contact-group layouts.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when an assignment does not
    /// cover its layout's nanowire count, or propagates code errors.
    pub fn new(
        row_code: &CodeSequence,
        row_layout: ContactGroupLayout,
        column_code: &CodeSequence,
        column_layout: ContactGroupLayout,
    ) -> Result<Self> {
        let row_words = row_code
            .take_cyclic(row_layout.nanowire_count())?
            .into_words();
        let column_words = column_code
            .take_cyclic(column_layout.nanowire_count())?
            .into_words();
        let row_kinds = row_layout.classify_positions();
        let column_kinds = column_layout.classify_positions();
        let bits = vec![false; row_words.len() * column_words.len()];
        Ok(CrossbarMemory {
            row_words,
            column_words,
            row_kinds,
            column_kinds,
            row_span: row_layout.nanowires_per_group(),
            column_span: column_layout.nanowires_per_group(),
            bits,
        })
    }

    /// Number of row nanowires.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.row_words.len()
    }

    /// Number of column nanowires.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.column_words.len()
    }

    /// Raw crosspoint capacity.
    #[must_use]
    pub fn raw_capacity(&self) -> usize {
        self.row_count() * self.column_count()
    }

    /// Whether a row nanowire is addressable (geometrically and by a unique
    /// code word within its contact group).
    #[must_use]
    pub fn row_addressable(&self, row: usize) -> bool {
        self.row_kinds.get(row) == Some(&PositionKind::Addressable)
            && Self::address_selects(&self.row_words, row, self.row_span)
    }

    /// Whether a column nanowire is addressable.
    #[must_use]
    pub fn column_addressable(&self, column: usize) -> bool {
        self.column_kinds.get(column) == Some(&PositionKind::Addressable)
            && Self::address_selects(&self.column_words, column, self.column_span)
    }

    /// Whether the crosspoint `(row, column)` can be used.
    #[must_use]
    pub fn crosspoint_usable(&self, row: usize, column: usize) -> bool {
        self.row_addressable(row) && self.column_addressable(column)
    }

    /// The number of usable crosspoints — the functional capacity of the
    /// memory.
    #[must_use]
    pub fn effective_capacity(&self) -> usize {
        let usable_rows = (0..self.row_count())
            .filter(|&r| self.row_addressable(r))
            .count();
        let usable_columns = (0..self.column_count())
            .filter(|&c| self.column_addressable(c))
            .count();
        usable_rows * usable_columns
    }

    /// Writes a bit at a crosspoint.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidAddress`] when the crosspoint does not
    /// exist or is not usable.
    pub fn write(&mut self, row: usize, column: usize, value: bool) -> Result<()> {
        let index = self.checked_index(row, column)?;
        self.bits[index] = value;
        Ok(())
    }

    /// Reads a bit from a crosspoint.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidAddress`] when the crosspoint does not
    /// exist or is not usable.
    pub fn read(&self, row: usize, column: usize) -> Result<bool> {
        let index = self.checked_index(row, column)?;
        Ok(self.bits[index])
    }

    fn checked_index(&self, row: usize, column: usize) -> Result<usize> {
        if row >= self.row_count() || column >= self.column_count() {
            return Err(CrossbarError::InvalidAddress {
                reason: format!(
                    "crosspoint ({row}, {column}) outside a {}x{} array",
                    self.row_count(),
                    self.column_count()
                ),
            });
        }
        if !self.crosspoint_usable(row, column) {
            return Err(CrossbarError::InvalidAddress {
                reason: format!("crosspoint ({row}, {column}) is not addressable"),
            });
        }
        Ok(row * self.column_count() + column)
    }

    /// Whether applying the code word of `position` within its contact group
    /// selects exactly that nanowire.
    fn address_selects(words: &[CodeWord], position: usize, group_span: usize) -> bool {
        // The contact group of `position` spans a window of words; applying
        // the position's own word must select it uniquely within the window.
        let group = position / group_span;
        let start = group * group_span;
        let end = (start + group_span).min(words.len());
        let group_words = &words[start..end];
        let offset = position - start;
        matches!(
            apply_address(group_words, &words[position]),
            Ok(AddressOutcome::Unique(index)) if index == offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LayoutRules;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn memory(code_length: usize, nanowires: usize) -> CrossbarMemory {
        let code = CodeSpec::new(CodeKind::ArrangedHot, LogicLevel::BINARY, code_length)
            .unwrap()
            .generate()
            .unwrap();
        let layout =
            ContactGroupLayout::new(nanowires, code.len() as u128, LayoutRules::paper_default())
                .unwrap();
        CrossbarMemory::new(&code, layout.clone(), &code, layout).unwrap()
    }

    #[test]
    fn construction_and_capacity() {
        let m = memory(6, 20);
        assert_eq!(m.row_count(), 20);
        assert_eq!(m.column_count(), 20);
        assert_eq!(m.raw_capacity(), 400);
        assert!(m.effective_capacity() <= m.raw_capacity());
        assert!(m.effective_capacity() > 0);
    }

    #[test]
    fn read_write_roundtrip_on_usable_crosspoints() {
        let mut m = memory(6, 20);
        let mut written = 0;
        for row in 0..m.row_count() {
            for column in 0..m.column_count() {
                if m.crosspoint_usable(row, column) {
                    m.write(row, column, (row + column) % 2 == 0).unwrap();
                    written += 1;
                }
            }
        }
        assert_eq!(written, m.effective_capacity());
        for row in 0..m.row_count() {
            for column in 0..m.column_count() {
                if m.crosspoint_usable(row, column) {
                    assert_eq!(m.read(row, column).unwrap(), (row + column) % 2 == 0);
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_and_unusable_accesses_fail() {
        let mut m = memory(6, 20);
        assert!(m.write(100, 0, true).is_err());
        assert!(m.read(0, 100).is_err());
        // Find an unusable crosspoint if any exists (boundary positions).
        if let Some(row) = (0..m.row_count()).find(|&r| !m.row_addressable(r)) {
            assert!(m.read(row, 0).is_err());
        }
    }

    #[test]
    fn single_group_memory_uses_every_crosspoint() {
        // 10 nanowires, code space 70 >= 10: single contact group, no
        // boundary or excess losses.
        let m = memory(8, 10);
        assert_eq!(m.effective_capacity(), m.raw_capacity());
    }
}
