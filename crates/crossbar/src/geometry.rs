//! Layout rules of the crossbar: the lithographic pitch of the CMOS-scale
//! wiring, the sub-lithographic nanowire pitch, and the contact-group design
//! rules of Section 6.1.

use serde::{Deserialize, Serialize};

use device_physics::Nanometers;

use crate::error::{CrossbarError, Result};

/// The geometric design rules of the crossbar and its decoder.
///
/// The paper's simulation platform fixes the lithography pitch `P_L` to
/// 32 nm, the nanowire pitch `P_N` to 10 nm, and requires every contact group
/// to be at least `1.5 × P_L` wide (Section 6.1).
///
/// # Examples
///
/// ```
/// use crossbar_array::LayoutRules;
///
/// let rules = LayoutRules::paper_default();
/// assert_eq!(rules.litho_pitch().value(), 32.0);
/// assert_eq!(rules.nanowire_pitch().value(), 10.0);
/// // A contact group must span at least ceil(48 / 10) = 5 nanowires.
/// assert_eq!(rules.min_nanowires_per_contact_group(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayoutRules {
    litho_pitch: Nanometers,
    nanowire_pitch: Nanometers,
    min_contact_width_factor: f64,
    contact_alignment_tolerance: Nanometers,
}

impl LayoutRules {
    /// Creates layout rules.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidLayout`] when a pitch is not positive,
    /// the minimum-width factor is below 1, or the alignment tolerance is
    /// negative.
    pub fn new(
        litho_pitch: Nanometers,
        nanowire_pitch: Nanometers,
        min_contact_width_factor: f64,
        contact_alignment_tolerance: Nanometers,
    ) -> Result<Self> {
        if !(litho_pitch.value() > 0.0 && litho_pitch.is_finite()) {
            return Err(CrossbarError::InvalidLayout {
                reason: format!("lithography pitch must be positive, got {litho_pitch}"),
            });
        }
        if !(nanowire_pitch.value() > 0.0 && nanowire_pitch.is_finite()) {
            return Err(CrossbarError::InvalidLayout {
                reason: format!("nanowire pitch must be positive, got {nanowire_pitch}"),
            });
        }
        if nanowire_pitch.value() > litho_pitch.value() {
            return Err(CrossbarError::InvalidLayout {
                reason: format!(
                    "nanowire pitch {nanowire_pitch} must not exceed the lithography pitch {litho_pitch}"
                ),
            });
        }
        if !(min_contact_width_factor >= 1.0 && min_contact_width_factor.is_finite()) {
            return Err(CrossbarError::InvalidLayout {
                reason: format!(
                    "minimum contact width factor must be at least 1, got {min_contact_width_factor}"
                ),
            });
        }
        if !(contact_alignment_tolerance.value() >= 0.0 && contact_alignment_tolerance.is_finite())
        {
            return Err(CrossbarError::InvalidLayout {
                reason: format!(
                    "contact alignment tolerance must be non-negative, got {contact_alignment_tolerance}"
                ),
            });
        }
        Ok(LayoutRules {
            litho_pitch,
            nanowire_pitch,
            min_contact_width_factor,
            contact_alignment_tolerance,
        })
    }

    /// The paper's simulation parameters: `P_L = 32 nm`, `P_N = 10 nm`,
    /// minimum contact-group width `1.5 × P_L`, and an alignment tolerance of
    /// half a lithography pitch (the overlay budget of the contact mask).
    #[must_use]
    pub fn paper_default() -> Self {
        LayoutRules {
            litho_pitch: Nanometers::new(32.0),
            nanowire_pitch: Nanometers::new(10.0),
            min_contact_width_factor: 1.5,
            contact_alignment_tolerance: Nanometers::new(16.0),
        }
    }

    /// The lithography pitch `P_L` of the CMOS-scale wiring (mesowires).
    #[must_use]
    pub fn litho_pitch(&self) -> Nanometers {
        self.litho_pitch
    }

    /// The nanowire pitch `P_N`.
    #[must_use]
    pub fn nanowire_pitch(&self) -> Nanometers {
        self.nanowire_pitch
    }

    /// The minimum contact-group width as a multiple of `P_L` (1.5 in the
    /// paper).
    #[must_use]
    pub fn min_contact_width_factor(&self) -> f64 {
        self.min_contact_width_factor
    }

    /// The overlay/alignment tolerance of the contact-group mask; nanowires
    /// within this distance of a group boundary may be contacted by both
    /// adjacent groups and are removed from the addressable set (ref. \[6\]).
    #[must_use]
    pub fn contact_alignment_tolerance(&self) -> Nanometers {
        self.contact_alignment_tolerance
    }

    /// The minimum physical width of a contact group
    /// (`min_contact_width_factor × P_L`).
    #[must_use]
    pub fn min_contact_width(&self) -> Nanometers {
        self.litho_pitch * self.min_contact_width_factor
    }

    /// The minimum number of nanowires a contact group spans, regardless of
    /// how many it can uniquely address.
    #[must_use]
    pub fn min_nanowires_per_contact_group(&self) -> usize {
        (self.min_contact_width().value() / self.nanowire_pitch.value()).ceil() as usize
    }

    /// The expected number of nanowires that fall inside the alignment
    /// uncertainty of one contact-group boundary (may be fractional).
    #[must_use]
    pub fn ambiguous_nanowires_per_boundary(&self) -> f64 {
        self.contact_alignment_tolerance.value() / self.nanowire_pitch.value()
    }

    /// How many nanowires fit under a wire of one lithography pitch — the
    /// density ratio between the two scales.
    #[must_use]
    pub fn nanowires_per_litho_pitch(&self) -> f64 {
        self.litho_pitch.value() / self.nanowire_pitch.value()
    }
}

impl Default for LayoutRules {
    fn default() -> Self {
        LayoutRules::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        let nm = Nanometers::new;
        assert!(LayoutRules::new(nm(0.0), nm(10.0), 1.5, nm(16.0)).is_err());
        assert!(LayoutRules::new(nm(32.0), nm(0.0), 1.5, nm(16.0)).is_err());
        assert!(LayoutRules::new(nm(32.0), nm(40.0), 1.5, nm(16.0)).is_err());
        assert!(LayoutRules::new(nm(32.0), nm(10.0), 0.5, nm(16.0)).is_err());
        assert!(LayoutRules::new(nm(32.0), nm(10.0), 1.5, nm(-1.0)).is_err());
        assert!(LayoutRules::new(nm(32.0), nm(10.0), 1.5, nm(16.0)).is_ok());
    }

    #[test]
    fn paper_defaults() {
        let rules = LayoutRules::paper_default();
        assert_eq!(rules, LayoutRules::default());
        assert_eq!(rules.litho_pitch().value(), 32.0);
        assert_eq!(rules.nanowire_pitch().value(), 10.0);
        assert_eq!(rules.min_contact_width().value(), 48.0);
        assert_eq!(rules.min_nanowires_per_contact_group(), 5);
        assert!((rules.ambiguous_nanowires_per_boundary() - 1.6).abs() < 1e-12);
        assert!((rules.nanowires_per_litho_pitch() - 3.2).abs() < 1e-12);
        assert_eq!(rules.min_contact_width_factor(), 1.5);
        assert_eq!(rules.contact_alignment_tolerance().value(), 16.0);
    }

    #[test]
    fn min_group_size_scales_with_the_pitch_ratio() {
        let nm = Nanometers::new;
        let dense = LayoutRules::new(nm(32.0), nm(4.0), 1.5, nm(8.0)).unwrap();
        assert_eq!(dense.min_nanowires_per_contact_group(), 12);
        let coarse = LayoutRules::new(nm(32.0), nm(16.0), 1.5, nm(8.0)).unwrap();
        assert_eq!(coarse.min_nanowires_per_contact_group(), 3);
    }
}
