//! Caves and half caves: the lithographically defined trenches in which the
//! MSPT grows its nanowires. The multi-spacer stack is symmetric about the
//! cave axis, so unique addressing inside one *half* cave implies unique
//! addressing of the whole array (Section 3.3) — every analysis in the
//! workspace therefore operates on half caves.

use serde::{Deserialize, Serialize};

use mspt_fabrication::PatternMatrix;
use nanowire_codes::CodeSequence;

use crate::error::{CrossbarError, Result};

/// One half cave: `N` nanowires, each carrying an `M`-region pattern assigned
/// from a code sequence.
///
/// The code sequence is applied cyclically: nanowire `i` receives word
/// `i mod Ω`, so each contact group of `Ω` nanowires sees every code word
/// exactly once.
///
/// # Examples
///
/// ```
/// use crossbar_array::HalfCave;
/// use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8)?.generate()?;
/// let half_cave = HalfCave::new(20, &code)?;
/// assert_eq!(half_cave.nanowire_count(), 20);
/// assert_eq!(half_cave.region_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalfCave {
    nanowire_count: usize,
    assignment: CodeSequence,
}

impl HalfCave {
    /// Creates a half cave of `nanowire_count` nanowires patterned with the
    /// cyclic extension of `code`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when `nanowire_count` is zero,
    /// or propagates code errors from the cyclic extension.
    pub fn new(nanowire_count: usize, code: &CodeSequence) -> Result<Self> {
        if nanowire_count == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: "a half cave needs at least one nanowire".to_string(),
            });
        }
        Ok(HalfCave {
            nanowire_count,
            assignment: code.take_cyclic(nanowire_count)?,
        })
    }

    /// The number of nanowires `N`.
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.nanowire_count
    }

    /// The number of doping regions `M` per nanowire.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.assignment.word_length()
    }

    /// The code word assigned to every nanowire, in definition order.
    #[must_use]
    pub fn assignment(&self) -> &CodeSequence {
        &self.assignment
    }

    /// The pattern matrix `P` of the half cave (the object the fabrication
    /// model consumes).
    ///
    /// # Errors
    ///
    /// Propagates fabrication-layer construction errors (cannot occur for a
    /// constructed half cave).
    pub fn pattern(&self) -> Result<PatternMatrix> {
        Ok(PatternMatrix::from_sequence(&self.assignment)?)
    }
}

/// A full cave: two mirror-image half caves sharing the sacrificial-layer
/// axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cave {
    half: HalfCave,
}

impl Cave {
    /// Creates a cave from the half-cave description (both halves are
    /// identical up to mirroring).
    #[must_use]
    pub fn from_half(half: HalfCave) -> Self {
        Cave { half }
    }

    /// One half of the cave.
    #[must_use]
    pub fn half(&self) -> &HalfCave {
        &self.half
    }

    /// Total nanowires in the cave (both halves).
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        2 * self.half.nanowire_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn gray_code() -> CodeSequence {
        CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 6)
            .unwrap()
            .generate()
            .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let code = gray_code();
        let half = HalfCave::new(20, &code).unwrap();
        assert_eq!(half.nanowire_count(), 20);
        assert_eq!(half.region_count(), 6);
        assert_eq!(half.assignment().len(), 20);
        assert!(HalfCave::new(0, &code).is_err());
    }

    #[test]
    fn assignment_wraps_cyclically() {
        let code = gray_code(); // 8 words
        let half = HalfCave::new(20, &code).unwrap();
        assert_eq!(half.assignment()[8], code[0]);
        assert_eq!(half.assignment()[19], code[3]);
    }

    #[test]
    fn pattern_matrix_matches_the_assignment() {
        let code = gray_code();
        let half = HalfCave::new(12, &code).unwrap();
        let pattern = half.pattern().unwrap();
        assert_eq!(pattern.nanowire_count(), 12);
        assert_eq!(pattern.region_count(), 6);
        assert_eq!(
            pattern.nanowire_word(3).unwrap().to_string(),
            code[3].to_string()
        );
    }

    #[test]
    fn cave_doubles_the_half() {
        let half = HalfCave::new(10, &gray_code()).unwrap();
        let cave = Cave::from_half(half.clone());
        assert_eq!(cave.nanowire_count(), 20);
        assert_eq!(cave.half(), &half);
    }
}
