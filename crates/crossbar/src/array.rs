//! The crossbar array: two orthogonal layers of parallel nanowires organised
//! in caves, sized for a target raw crosspoint capacity (the paper's
//! simulation fixes `D_RAW = 16 kB`).

use serde::{Deserialize, Serialize};

use device_physics::Nanometers;

use crate::error::{CrossbarError, Result};
use crate::geometry::LayoutRules;

/// The raw capacity the paper's simulation platform uses: 16 kB of raw
/// crosspoints (one bit per crosspoint).
pub const PAPER_RAW_BITS: u64 = 16 * 1024 * 8;

/// A square crossbar specification: raw capacity, layout rules and cave
/// organisation.
///
/// # Examples
///
/// ```
/// use crossbar_array::{CrossbarSpec, LayoutRules};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = CrossbarSpec::paper_default()?;
/// assert_eq!(spec.raw_bits(), 16 * 1024 * 8);
/// // A square 16 kB crossbar needs ceil(sqrt(131072)) = 363 nanowires per layer.
/// assert_eq!(spec.nanowires_per_layer(), 363);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarSpec {
    raw_bits: u64,
    nanowires_per_half_cave: usize,
    rules: LayoutRules,
}

impl CrossbarSpec {
    /// Creates a crossbar specification.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when the capacity or the
    /// nanowires per half cave are zero.
    pub fn new(raw_bits: u64, nanowires_per_half_cave: usize, rules: LayoutRules) -> Result<Self> {
        if raw_bits == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: "raw capacity must be at least one bit".to_string(),
            });
        }
        if nanowires_per_half_cave == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: "a half cave needs at least one nanowire".to_string(),
            });
        }
        Ok(CrossbarSpec {
            raw_bits,
            nanowires_per_half_cave,
            rules,
        })
    }

    /// The paper's simulation crossbar: 16 kB raw, 40 nanowires per half cave
    /// (the 0.8 µm cave of the MSPT at a 10 nm pitch), paper layout rules.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API consistency.
    pub fn paper_default() -> Result<Self> {
        CrossbarSpec::new(PAPER_RAW_BITS, 40, LayoutRules::paper_default())
    }

    /// The raw crosspoint capacity in bits.
    #[must_use]
    pub fn raw_bits(&self) -> u64 {
        self.raw_bits
    }

    /// The number of nanowires per half cave.
    #[must_use]
    pub fn nanowires_per_half_cave(&self) -> usize {
        self.nanowires_per_half_cave
    }

    /// The layout rules of the crossbar.
    #[must_use]
    pub fn rules(&self) -> &LayoutRules {
        &self.rules
    }

    /// The number of nanowires each layer needs for a square crossbar:
    /// `ceil(sqrt(raw_bits))`.
    #[must_use]
    pub fn nanowires_per_layer(&self) -> usize {
        (self.raw_bits as f64).sqrt().ceil() as usize
    }

    /// The number of caves per layer (each cave holds two half caves).
    #[must_use]
    pub fn caves_per_layer(&self) -> usize {
        self.nanowires_per_layer()
            .div_ceil(2 * self.nanowires_per_half_cave)
    }

    /// The number of half caves per layer.
    #[must_use]
    pub fn half_caves_per_layer(&self) -> usize {
        2 * self.caves_per_layer()
    }

    /// The actual raw crosspoint count of the square array
    /// (`nanowires_per_layer²`), which may slightly exceed `raw_bits` because
    /// of rounding to whole nanowires.
    #[must_use]
    pub fn raw_crosspoints(&self) -> u64 {
        let w = self.nanowires_per_layer() as u64;
        w * w
    }

    /// The width of the nanowire core of one layer (nanowire count × pitch).
    #[must_use]
    pub fn core_width(&self) -> Nanometers {
        self.rules.nanowire_pitch() * self.nanowires_per_layer() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(CrossbarSpec::new(0, 40, LayoutRules::paper_default()).is_err());
        assert!(CrossbarSpec::new(1024, 0, LayoutRules::paper_default()).is_err());
        assert!(CrossbarSpec::new(1024, 40, LayoutRules::paper_default()).is_ok());
    }

    #[test]
    fn paper_default_dimensions() {
        let spec = CrossbarSpec::paper_default().unwrap();
        assert_eq!(spec.raw_bits(), 131_072);
        assert_eq!(spec.nanowires_per_layer(), 363);
        assert_eq!(spec.nanowires_per_half_cave(), 40);
        // 363 nanowires / 80 per cave -> 5 caves.
        assert_eq!(spec.caves_per_layer(), 5);
        assert_eq!(spec.half_caves_per_layer(), 10);
        assert!(spec.raw_crosspoints() >= spec.raw_bits());
        assert_eq!(spec.core_width().value(), 3630.0);
    }

    #[test]
    fn small_crossbar_dimensions() {
        let spec = CrossbarSpec::new(1024, 16, LayoutRules::paper_default()).unwrap();
        assert_eq!(spec.nanowires_per_layer(), 32);
        assert_eq!(spec.caves_per_layer(), 1);
        assert_eq!(spec.raw_crosspoints(), 1024);
    }
}
