//! # crossbar-array
//!
//! Crossbar geometry, contact groups, electrical addressing, yield and area
//! models for MSPT nanowire arrays — the Section 6.1 simulation substrate of
//! the DAC 2009 paper.
//!
//! The chain from a code choice to the paper's figures is:
//!
//! 1. [`LayoutRules`] fixes the lithography pitch `P_L = 32 nm`, the nanowire
//!    pitch `P_N = 10 nm` and the contact design rules.
//! 2. [`ContactGroupLayout`] partitions the `N` nanowires of a half cave into
//!    the fewest possible contact groups given the code-space size `Ω`, and
//!    accounts for the nanowires lost at group boundaries.
//! 3. [`AddressabilityProfile`] turns the accumulated variability `Σ` of the
//!    fabrication model into a per-nanowire probability of being electrically
//!    addressable.
//! 4. [`CaveYield`] combines both into the cave yield `Y` and the crossbar
//!    yield `Y²` (Fig. 7), and [`CrossbarArea`] adds the footprint model that
//!    produces the effective bit area (Fig. 8).
//!
//! # Examples
//!
//! ```
//! use crossbar_array::{
//!     AddressabilityProfile, CaveYield, ContactGroupLayout, CrossbarArea, CrossbarSpec,
//!     LayoutRules,
//! };
//! use device_physics::{DopingLadder, ThresholdModel, VariabilityModel, Volts};
//! use mspt_fabrication::{PatternMatrix, VariabilityMatrix};
//! use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CrossbarSpec::paper_default()?;
//! let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10)?;
//! let sequence = code.generate()?.take_cyclic(spec.nanowires_per_half_cave())?;
//!
//! let ladder = DopingLadder::from_model(
//!     &ThresholdModel::default_mspt(), 2, (Volts::new(0.0), Volts::new(1.0)))?;
//! let sigma = VariabilityModel::paper_default();
//! let variability = VariabilityMatrix::from_pattern(
//!     &PatternMatrix::from_sequence(&sequence)?, &ladder, &sigma)?;
//!
//! let layout = ContactGroupLayout::new(
//!     spec.nanowires_per_half_cave(), code.space_size(), *spec.rules())?;
//! let profile = AddressabilityProfile::from_variability_with_ladder(&variability, &sigma, &ladder)?;
//! let yield_ = CaveYield::compute(&profile, &layout)?;
//! let area = CrossbarArea::compute(&spec, code.code_length(), &layout)?;
//! let bit_area = area.effective_bit_area(&spec, &yield_)?;
//! assert!(bit_area.value() > 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addressing;
mod area;
mod array;
mod cave;
mod contact;
mod defects;
mod error;
mod geometry;
mod memory;
mod yield_model;

pub use addressing::{
    addressable_prefix_len, apply_address, check_unique_addressing, conducts,
    is_uniquely_addressable, AddressOutcome,
};
pub use area::CrossbarArea;
pub use array::{CrossbarSpec, PAPER_RAW_BITS};
pub use cave::{Cave, HalfCave};
pub use contact::{ContactGroupLayout, PositionKind};
pub use defects::{
    chunk_seed, defect_band_count, CompositeYield, DefectMap, DefectModel, DEFECT_BAND_ROWS,
};
pub use error::{CrossbarError, Result};
pub use geometry::LayoutRules;
pub use memory::CrossbarMemory;
pub use yield_model::{AddressabilityProfile, CaveYield};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LayoutRules>();
        assert_send_sync::<ContactGroupLayout>();
        assert_send_sync::<CrossbarSpec>();
        assert_send_sync::<HalfCave>();
        assert_send_sync::<AddressabilityProfile>();
        assert_send_sync::<CaveYield>();
        assert_send_sync::<CrossbarArea>();
        assert_send_sync::<CrossbarMemory>();
        assert_send_sync::<DefectModel>();
        assert_send_sync::<CrossbarError>();
    }
}
