//! Error types for the `crossbar-array` crate.

use std::error::Error;
use std::fmt;

use device_physics::PhysicsError;
use mspt_fabrication::FabricationError;
use nanowire_codes::CodeError;

/// Errors produced by the crossbar geometry, addressing, yield and area
/// models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrossbarError {
    /// A layout-rule parameter is outside its physical range.
    InvalidLayout {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A crossbar specification is inconsistent (zero capacity, zero
    /// nanowires per cave, ...).
    InvalidSpec {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An addressing operation referenced a nanowire or address that does not
    /// exist.
    InvalidAddress {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The code assigned to a contact group does not address its nanowires
    /// uniquely (it is not an antichain under component-wise comparison).
    NotUniquelyAddressable {
        /// Display form of two conflicting code words.
        conflict: String,
    },
    /// A probability input was outside `[0, 1]` or otherwise unusable.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// An error bubbled up from the code layer.
    Code(CodeError),
    /// An error bubbled up from the device-physics layer.
    Physics(PhysicsError),
    /// An error bubbled up from the fabrication layer.
    Fabrication(FabricationError),
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::InvalidLayout { reason } => write!(f, "invalid layout rules: {reason}"),
            CrossbarError::InvalidSpec { reason } => {
                write!(f, "invalid crossbar specification: {reason}")
            }
            CrossbarError::InvalidAddress { reason } => write!(f, "invalid address: {reason}"),
            CrossbarError::NotUniquelyAddressable { conflict } => {
                write!(f, "code does not address nanowires uniquely: {conflict}")
            }
            CrossbarError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            CrossbarError::Code(err) => write!(f, "code error: {err}"),
            CrossbarError::Physics(err) => write!(f, "device-physics error: {err}"),
            CrossbarError::Fabrication(err) => write!(f, "fabrication error: {err}"),
        }
    }
}

impl Error for CrossbarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CrossbarError::Code(err) => Some(err),
            CrossbarError::Physics(err) => Some(err),
            CrossbarError::Fabrication(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CodeError> for CrossbarError {
    fn from(err: CodeError) -> Self {
        CrossbarError::Code(err)
    }
}

impl From<PhysicsError> for CrossbarError {
    fn from(err: PhysicsError) -> Self {
        CrossbarError::Physics(err)
    }
}

impl From<FabricationError> for CrossbarError {
    fn from(err: FabricationError) -> Self {
        CrossbarError::Fabrication(err)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CrossbarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let layout = CrossbarError::InvalidLayout {
            reason: "negative pitch".to_string(),
        };
        assert!(layout.to_string().contains("layout"));
        assert!(layout.source().is_none());

        let nested = CrossbarError::from(CodeError::EmptyWord);
        assert!(nested.source().is_some());
        let physics = CrossbarError::from(PhysicsError::SolverDidNotConverge { iterations: 3 });
        assert!(physics.source().is_some());
        let fabrication = CrossbarError::from(FabricationError::InvalidMatrixShape {
            reason: "ragged".to_string(),
        });
        assert!(fabrication.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CrossbarError>();
    }
}
