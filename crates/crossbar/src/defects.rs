//! Defect injection — an extension beyond the paper's scope.
//!
//! The paper explicitly neglects broken nanowires ("we actually noticed that
//! the fabricated nanowires had a yield close to unit") and molecular-switch
//! defects. Real MSPT arrays of very high aspect ratio will eventually break
//! some spacers, so this module models the two first-order defect mechanisms
//! and composes them with the decoder yield:
//!
//! * **broken nanowires** — a nanowire that is mechanically interrupted can
//!   never conduct, independent of its decoder pattern;
//! * **stuck crosspoints** — a crosspoint whose molecular/phase-change layer
//!   is shorted or open, independent of the decoders.
//!
//! Both defect types are independent of the decoder-induced losses, so the
//! composite crossbar yield is the product of the three factors.
//!
//! # Chunked map layout (determinism contract)
//!
//! [`DefectModel::sample_map`] draws a map not from one long RNG stream but
//! from **independently seeded chunks**, so map generation can be sharded
//! across threads (see `decoder_sim::ExecutionEngine::sample_defect_map`)
//! while staying bit-identical for any thread count:
//!
//! * chunk `0` — the row-breakage vector;
//! * chunk `1` — the column-breakage vector;
//! * chunk `2 + b` — band `b` of the crosspoint-defect matrix, covering rows
//!   `b · DEFECT_BAND_ROWS .. (b + 1) · DEFECT_BAND_ROWS`.
//!
//! Chunk `c` is seeded [`chunk_seed`]`(seed ^ DOMAIN, c)`, where `DOMAIN` is
//! a fixed defect-map tag: a Monte-Carlo estimation and a defect map sharing
//! one run seed therefore draw from *decorrelated* streams instead of
//! replaying each other's uniforms.
//!
//! Every chunk consumes a fixed number of uniforms (one per nanowire or
//! crosspoint it covers), so the map depends only on `(rates, rows, columns,
//! seed)` — never on which thread samples which chunk, and never on the
//! defect rates steering RNG consumption.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{CrossbarError, Result};
use crate::yield_model::CaveYield;

/// Derives the RNG seed of one deterministic work chunk from a run seed and
/// the chunk index — a SplitMix64-style finalizer, so neighbouring chunks get
/// well-separated generator states and the mapping depends on nothing else.
///
/// This is the workspace-wide stream-splitting primitive: the Monte-Carlo
/// sampler in `decoder-sim` seeds its sample chunks with it directly, and
/// [`DefectModel::sample_map`] seeds its map chunks with it through a
/// defect-map domain tag (see the module docs), so the two samplers never
/// replay each other's streams for a shared run seed. Both contracts
/// ("bit-identical for any thread count") rest on this function being pure in
/// `(seed, chunk_index)`.
#[must_use]
pub fn chunk_seed(seed: u64, chunk_index: u64) -> u64 {
    let mut z = seed.wrapping_add(
        chunk_index
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of crossbar rows per defect-map band — the fixed chunk size of the
/// chunked map layout. Fixed (rather than derived from the machine) so maps
/// are reproducible across hosts; like the Monte-Carlo `chunk_size`, maps
/// depend on this value but never on the thread count.
pub const DEFECT_BAND_ROWS: usize = 64;

/// Number of [`DEFECT_BAND_ROWS`]-row bands a `rows`-row defect map is
/// sampled in (the last band may be shorter).
#[must_use]
pub fn defect_band_count(rows: usize) -> usize {
    rows.div_ceil(DEFECT_BAND_ROWS)
}

/// Domain-separation tag mixed into the run seed before defect-map chunk
/// derivation. Without it, chunk `c` of a defect map and chunk `c` of a
/// Monte-Carlo estimation sharing one run seed would consume the *same*
/// uniform stream, statistically coupling broken-nanowire placement to the
/// sampled dose disturbances in combined studies.
const DEFECT_SEED_DOMAIN: u64 = 0xdefe_c7ed_0000_0001;

/// The defect-map instance of the chunk-seeding contract:
/// `chunk_seed(seed ^ DEFECT_SEED_DOMAIN, chunk)`.
fn defect_chunk_seed(seed: u64, chunk: u64) -> u64 {
    chunk_seed(seed ^ DEFECT_SEED_DOMAIN, chunk)
}

/// The defect rates of the crossbar, all as independent probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectModel {
    /// Probability that a nanowire is mechanically broken.
    nanowire_breakage: f64,
    /// Probability that a crosspoint's switching layer is defective.
    crosspoint_defect: f64,
}

impl DefectModel {
    /// Creates a defect model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidProbability`] when either rate is
    /// outside `[0, 1]`.
    pub fn new(nanowire_breakage: f64, crosspoint_defect: f64) -> Result<Self> {
        for value in [nanowire_breakage, crosspoint_defect] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(CrossbarError::InvalidProbability { value });
            }
        }
        Ok(DefectModel {
            nanowire_breakage,
            crosspoint_defect,
        })
    }

    /// The paper's assumption: no breakage, no switch defects.
    #[must_use]
    pub fn ideal() -> Self {
        DefectModel {
            nanowire_breakage: 0.0,
            crosspoint_defect: 0.0,
        }
    }

    /// The nanowire breakage probability.
    #[must_use]
    pub fn nanowire_breakage(&self) -> f64 {
        self.nanowire_breakage
    }

    /// The crosspoint defect probability.
    #[must_use]
    pub fn crosspoint_defect(&self) -> f64 {
        self.crosspoint_defect
    }

    /// The probability that a given crosspoint survives both of its nanowires
    /// being intact and its own switching layer being functional —
    /// independent of the decoder.
    #[must_use]
    pub fn crosspoint_survival(&self) -> f64 {
        let wire_ok = 1.0 - self.nanowire_breakage;
        wire_ok * wire_ok * (1.0 - self.crosspoint_defect)
    }

    /// Composes the decoder yield with the defect model: the fraction of
    /// crosspoints that are both addressable (decoder) and functional
    /// (defects).
    #[must_use]
    pub fn compose_with(&self, decoder_yield: &CaveYield) -> CompositeYield {
        let crossbar_yield = decoder_yield.crossbar_yield() * self.crosspoint_survival();
        CompositeYield {
            decoder_yield: decoder_yield.crossbar_yield(),
            defect_survival: self.crosspoint_survival(),
            crossbar_yield,
        }
    }

    /// Samples a defect map for a `rows × columns` crossbar with a
    /// deterministic seed: which nanowires are broken and which crosspoints
    /// are defective.
    ///
    /// The map is assembled from the independently seeded chunks of the
    /// module-level layout, so this serial reference implementation is
    /// bit-identical to a sharded assembly of the same chunks at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when either dimension is zero.
    pub fn sample_map(&self, rows: usize, columns: usize, seed: u64) -> Result<DefectMap> {
        let mut defective = Vec::with_capacity(rows.saturating_mul(columns));
        for band in 0..defect_band_count(rows) {
            defective.extend(self.sample_defective_band(band, rows, columns, seed));
        }
        DefectMap::from_parts(
            rows,
            columns,
            self.sample_row_breakage(rows, seed),
            self.sample_column_breakage(columns, seed),
            defective,
        )
    }

    /// Samples chunk `0` of the map layout: the row-breakage vector (`rows`
    /// uniforms from the chunk-0 generator of the domain-tagged layout).
    #[must_use]
    pub fn sample_row_breakage(&self, rows: usize, seed: u64) -> Vec<bool> {
        self.sample_bools(rows, self.nanowire_breakage, defect_chunk_seed(seed, 0))
    }

    /// Samples chunk `1` of the map layout: the column-breakage vector
    /// (`columns` uniforms from the chunk-1 generator of the domain-tagged
    /// layout).
    #[must_use]
    pub fn sample_column_breakage(&self, columns: usize, seed: u64) -> Vec<bool> {
        self.sample_bools(columns, self.nanowire_breakage, defect_chunk_seed(seed, 1))
    }

    /// Samples chunk `2 + band` of the map layout: the crosspoint-defect
    /// flags of the rows in `band`, in row-major order (one uniform per
    /// crosspoint, from the chunk-`2 + band` generator of the domain-tagged
    /// layout).
    ///
    /// Bands past the end of the map (`band ≥ defect_band_count(rows)`) are
    /// empty.
    #[must_use]
    pub fn sample_defective_band(
        &self,
        band: usize,
        rows: usize,
        columns: usize,
        seed: u64,
    ) -> Vec<bool> {
        let start = band.saturating_mul(DEFECT_BAND_ROWS);
        let band_rows = rows.saturating_sub(start).min(DEFECT_BAND_ROWS);
        self.sample_bools(
            band_rows * columns,
            self.crosspoint_defect,
            defect_chunk_seed(seed, 2 + band as u64),
        )
    }

    fn sample_bools(&self, count: usize, rate: f64, seed: u64) -> Vec<bool> {
        // mspt-analyze: allow(raw-seed) every caller derives `seed` via defect_chunk_seed (DEFECT_SEED_DOMAIN) just above
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| rng.gen::<f64>() < rate).collect()
    }
}

impl Default for DefectModel {
    fn default() -> Self {
        DefectModel::ideal()
    }
}

/// The decoder yield combined with the defect survival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompositeYield {
    /// The decoder-limited crossbar yield `Y²`.
    pub decoder_yield: f64,
    /// The defect survival probability of a crosspoint.
    pub defect_survival: f64,
    /// The composite crossbar yield (product of the two).
    pub crossbar_yield: f64,
}

impl CompositeYield {
    /// The effective number of usable bits of a crossbar with `raw_bits`
    /// crosspoints.
    #[must_use]
    pub fn effective_bits(&self, raw_bits: u64) -> f64 {
        raw_bits as f64 * self.crossbar_yield
    }
}

/// A sampled defect map of one crossbar instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectMap {
    rows: usize,
    columns: usize,
    broken_rows: Vec<bool>,
    broken_columns: Vec<bool>,
    defective: Vec<bool>,
}

impl DefectMap {
    /// Assembles a map from sampled chunks: the breakage vectors and the
    /// row-major crosspoint-defect flags (the concatenated bands of the
    /// module-level layout).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when either dimension is zero
    /// or a part's length does not match the dimensions.
    pub fn from_parts(
        rows: usize,
        columns: usize,
        broken_rows: Vec<bool>,
        broken_columns: Vec<bool>,
        defective: Vec<bool>,
    ) -> Result<Self> {
        if rows == 0 || columns == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: format!("defect map dimensions {rows}x{columns} must be positive"),
            });
        }
        if broken_rows.len() != rows
            || broken_columns.len() != columns
            || defective.len() != rows * columns
        {
            return Err(CrossbarError::InvalidSpec {
                reason: format!(
                    "defect map parts ({}, {}, {}) do not match dimensions {rows}x{columns}",
                    broken_rows.len(),
                    broken_columns.len(),
                    defective.len()
                ),
            });
        }
        Ok(DefectMap {
            rows,
            columns,
            broken_rows,
            broken_columns,
            defective,
        })
    }

    /// Number of row nanowires.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of column nanowires.
    #[must_use]
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Whether a row nanowire is broken.
    #[must_use]
    pub fn row_broken(&self, row: usize) -> bool {
        self.broken_rows.get(row).copied().unwrap_or(true)
    }

    /// Whether a column nanowire is broken.
    #[must_use]
    pub fn column_broken(&self, column: usize) -> bool {
        self.broken_columns.get(column).copied().unwrap_or(true)
    }

    /// Whether a crosspoint's switching layer is defective.
    #[must_use]
    pub fn crosspoint_defective(&self, row: usize, column: usize) -> bool {
        if row >= self.rows || column >= self.columns {
            return true;
        }
        self.defective[row * self.columns + column]
    }

    /// Whether a crosspoint is usable under this defect map (both nanowires
    /// intact and the switching layer functional).
    #[must_use]
    pub fn crosspoint_usable(&self, row: usize, column: usize) -> bool {
        !self.row_broken(row)
            && !self.column_broken(column)
            && !self.crosspoint_defective(row, column)
    }

    /// The fraction of usable crosspoints of the sampled instance.
    #[must_use]
    pub fn usable_fraction(&self) -> f64 {
        let usable = (0..self.rows)
            .flat_map(|r| (0..self.columns).map(move |c| (r, c)))
            .filter(|&(r, c)| self.crosspoint_usable(r, c))
            .count();
        usable as f64 / (self.rows * self.columns) as f64
    }

    /// Composes this sampled instance with the decoder yield: the sampled
    /// counterpart of [`DefectModel::compose_with`], using the instance's
    /// [`usable_fraction`](DefectMap::usable_fraction) instead of the
    /// expected survival — what one concrete fabricated crossbar would
    /// deliver rather than the ensemble average.
    #[must_use]
    pub fn compose_with(&self, decoder_yield: &CaveYield) -> CompositeYield {
        let defect_survival = self.usable_fraction();
        CompositeYield {
            decoder_yield: decoder_yield.crossbar_yield(),
            defect_survival,
            crossbar_yield: decoder_yield.crossbar_yield() * defect_survival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::ContactGroupLayout;
    use crate::geometry::LayoutRules;
    use crate::yield_model::AddressabilityProfile;

    fn decoder_yield() -> CaveYield {
        let layout = ContactGroupLayout::new(20, 32, LayoutRules::paper_default()).unwrap();
        let profile = AddressabilityProfile::new(vec![0.9; 20]).unwrap();
        CaveYield::compute(&profile, &layout).unwrap()
    }

    #[test]
    fn construction_validates_probabilities() {
        assert!(DefectModel::new(-0.1, 0.0).is_err());
        assert!(DefectModel::new(0.0, 1.5).is_err());
        assert!(DefectModel::new(f64::NAN, 0.0).is_err());
        assert!(DefectModel::new(0.02, 0.01).is_ok());
        assert_eq!(DefectModel::default(), DefectModel::ideal());
    }

    #[test]
    fn ideal_model_does_not_change_the_decoder_yield() {
        let decoder = decoder_yield();
        let composite = DefectModel::ideal().compose_with(&decoder);
        assert_eq!(composite.defect_survival, 1.0);
        assert!((composite.crossbar_yield - decoder.crossbar_yield()).abs() < 1e-12);
        assert!((composite.effective_bits(1_000) - decoder.effective_bits(1_000)).abs() < 1e-9);
    }

    #[test]
    fn defects_compose_multiplicatively() {
        let decoder = decoder_yield();
        let model = DefectModel::new(0.05, 0.02).unwrap();
        let composite = model.compose_with(&decoder);
        let expected_survival = 0.95 * 0.95 * 0.98;
        assert!((composite.defect_survival - expected_survival).abs() < 1e-12);
        assert!(
            (composite.crossbar_yield - decoder.crossbar_yield() * expected_survival).abs() < 1e-12
        );
        assert!(composite.crossbar_yield < composite.decoder_yield);
    }

    #[test]
    fn sampled_maps_match_the_rates_statistically() {
        let model = DefectModel::new(0.1, 0.05).unwrap();
        let map = model.sample_map(200, 200, 42).unwrap();
        assert_eq!(map.rows(), 200);
        assert_eq!(map.columns(), 200);
        let usable = map.usable_fraction();
        let expected = model.crosspoint_survival();
        assert!(
            (usable - expected).abs() < 0.05,
            "sampled {usable}, expected {expected}"
        );
        // Determinism: the same seed gives the same map.
        assert_eq!(map, model.sample_map(200, 200, 42).unwrap());
        assert_ne!(map, model.sample_map(200, 200, 43).unwrap());
    }

    #[test]
    fn sampled_maps_compose_with_the_decoder_yield() {
        let decoder = decoder_yield();
        let model = DefectModel::new(0.1, 0.05).unwrap();
        let map = model.sample_map(100, 100, 42).unwrap();
        let composite = map.compose_with(&decoder);
        assert_eq!(composite.defect_survival, map.usable_fraction());
        assert_eq!(composite.decoder_yield, decoder.crossbar_yield());
        assert!(
            (composite.crossbar_yield - decoder.crossbar_yield() * map.usable_fraction()).abs()
                < 1e-15
        );
        // An ideal map composes to exactly the decoder yield.
        let ideal = DefectModel::ideal().sample_map(10, 10, 1).unwrap();
        let unchanged = ideal.compose_with(&decoder);
        assert_eq!(unchanged.defect_survival, 1.0);
        assert_eq!(unchanged.crossbar_yield, decoder.crossbar_yield());
    }

    #[test]
    fn out_of_range_lookups_count_as_defective() {
        let map = DefectModel::ideal().sample_map(4, 4, 1).unwrap();
        assert!(map.crosspoint_defective(10, 0));
        assert!(map.row_broken(10));
        assert!(map.column_broken(10));
        assert!(!map.crosspoint_usable(10, 0));
        assert!(map.crosspoint_usable(1, 1));
        assert_eq!(map.usable_fraction(), 1.0);
    }

    #[test]
    fn zero_sized_maps_are_rejected() {
        assert!(DefectModel::ideal().sample_map(0, 4, 1).is_err());
        assert!(DefectModel::ideal().sample_map(4, 0, 1).is_err());
    }

    #[test]
    fn chunk_seeds_are_distinct_and_stable() {
        assert_eq!(chunk_seed(42, 0), chunk_seed(42, 0));
        assert_ne!(chunk_seed(42, 0), chunk_seed(42, 1));
        assert_ne!(chunk_seed(42, 0), chunk_seed(43, 0));
    }

    #[test]
    fn maps_assemble_from_independently_sampled_chunks() {
        // Spanning multiple bands (150 rows > DEFECT_BAND_ROWS), reassembling
        // the chunks in any grouping must reproduce sample_map exactly — the
        // property the execution engine's sharded assembly relies on.
        let model = DefectModel::new(0.1, 0.05).unwrap();
        let (rows, columns, seed) = (150usize, 40usize, 42u64);
        assert_eq!(defect_band_count(rows), 3);
        let mut defective = Vec::new();
        // Deliberately sample the bands out of order to mimic scheduling.
        let mut bands: Vec<(usize, Vec<bool>)> = (0..defect_band_count(rows))
            .rev()
            .map(|band| (band, model.sample_defective_band(band, rows, columns, seed)))
            .collect();
        bands.sort_by_key(|(band, _)| *band);
        for (_, band) in bands {
            defective.extend(band);
        }
        let assembled = DefectMap::from_parts(
            rows,
            columns,
            model.sample_row_breakage(rows, seed),
            model.sample_column_breakage(columns, seed),
            defective,
        )
        .unwrap();
        assert_eq!(assembled, model.sample_map(rows, columns, seed).unwrap());
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(
            DefectMap::from_parts(2, 2, vec![false; 2], vec![false; 2], vec![false; 4]).is_ok()
        );
        assert!(
            DefectMap::from_parts(2, 2, vec![false; 3], vec![false; 2], vec![false; 4]).is_err()
        );
        assert!(
            DefectMap::from_parts(2, 2, vec![false; 2], vec![false; 1], vec![false; 4]).is_err()
        );
        assert!(
            DefectMap::from_parts(2, 2, vec![false; 2], vec![false; 2], vec![false; 3]).is_err()
        );
        assert!(DefectMap::from_parts(0, 2, vec![], vec![false; 2], vec![]).is_err());
    }
}
