//! Defect injection — an extension beyond the paper's scope.
//!
//! The paper explicitly neglects broken nanowires ("we actually noticed that
//! the fabricated nanowires had a yield close to unit") and molecular-switch
//! defects. Real MSPT arrays of very high aspect ratio will eventually break
//! some spacers, so this module models the two first-order defect mechanisms
//! and composes them with the decoder yield:
//!
//! * **broken nanowires** — a nanowire that is mechanically interrupted can
//!   never conduct, independent of its decoder pattern;
//! * **stuck crosspoints** — a crosspoint whose molecular/phase-change layer
//!   is shorted or open, independent of the decoders.
//!
//! Both defect types are independent of the decoder-induced losses, so the
//! composite crossbar yield is the product of the three factors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{CrossbarError, Result};
use crate::yield_model::CaveYield;

/// The defect rates of the crossbar, all as independent probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectModel {
    /// Probability that a nanowire is mechanically broken.
    nanowire_breakage: f64,
    /// Probability that a crosspoint's switching layer is defective.
    crosspoint_defect: f64,
}

impl DefectModel {
    /// Creates a defect model.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidProbability`] when either rate is
    /// outside `[0, 1]`.
    pub fn new(nanowire_breakage: f64, crosspoint_defect: f64) -> Result<Self> {
        for value in [nanowire_breakage, crosspoint_defect] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(CrossbarError::InvalidProbability { value });
            }
        }
        Ok(DefectModel {
            nanowire_breakage,
            crosspoint_defect,
        })
    }

    /// The paper's assumption: no breakage, no switch defects.
    #[must_use]
    pub fn ideal() -> Self {
        DefectModel {
            nanowire_breakage: 0.0,
            crosspoint_defect: 0.0,
        }
    }

    /// The nanowire breakage probability.
    #[must_use]
    pub fn nanowire_breakage(&self) -> f64 {
        self.nanowire_breakage
    }

    /// The crosspoint defect probability.
    #[must_use]
    pub fn crosspoint_defect(&self) -> f64 {
        self.crosspoint_defect
    }

    /// The probability that a given crosspoint survives both of its nanowires
    /// being intact and its own switching layer being functional —
    /// independent of the decoder.
    #[must_use]
    pub fn crosspoint_survival(&self) -> f64 {
        let wire_ok = 1.0 - self.nanowire_breakage;
        wire_ok * wire_ok * (1.0 - self.crosspoint_defect)
    }

    /// Composes the decoder yield with the defect model: the fraction of
    /// crosspoints that are both addressable (decoder) and functional
    /// (defects).
    #[must_use]
    pub fn compose_with(&self, decoder_yield: &CaveYield) -> CompositeYield {
        let crossbar_yield = decoder_yield.crossbar_yield() * self.crosspoint_survival();
        CompositeYield {
            decoder_yield: decoder_yield.crossbar_yield(),
            defect_survival: self.crosspoint_survival(),
            crossbar_yield,
        }
    }

    /// Samples a defect map for a `rows × columns` crossbar with a
    /// deterministic seed: which nanowires are broken and which crosspoints
    /// are defective.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when either dimension is zero.
    pub fn sample_map(&self, rows: usize, columns: usize, seed: u64) -> Result<DefectMap> {
        if rows == 0 || columns == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: format!("defect map dimensions {rows}x{columns} must be positive"),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let broken_rows = (0..rows)
            .map(|_| rng.gen::<f64>() < self.nanowire_breakage)
            .collect();
        let broken_columns = (0..columns)
            .map(|_| rng.gen::<f64>() < self.nanowire_breakage)
            .collect();
        let defective = (0..rows * columns)
            .map(|_| rng.gen::<f64>() < self.crosspoint_defect)
            .collect();
        Ok(DefectMap {
            rows,
            columns,
            broken_rows,
            broken_columns,
            defective,
        })
    }
}

impl Default for DefectModel {
    fn default() -> Self {
        DefectModel::ideal()
    }
}

/// The decoder yield combined with the defect survival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompositeYield {
    /// The decoder-limited crossbar yield `Y²`.
    pub decoder_yield: f64,
    /// The defect survival probability of a crosspoint.
    pub defect_survival: f64,
    /// The composite crossbar yield (product of the two).
    pub crossbar_yield: f64,
}

impl CompositeYield {
    /// The effective number of usable bits of a crossbar with `raw_bits`
    /// crosspoints.
    #[must_use]
    pub fn effective_bits(&self, raw_bits: u64) -> f64 {
        raw_bits as f64 * self.crossbar_yield
    }
}

/// A sampled defect map of one crossbar instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectMap {
    rows: usize,
    columns: usize,
    broken_rows: Vec<bool>,
    broken_columns: Vec<bool>,
    defective: Vec<bool>,
}

impl DefectMap {
    /// Number of row nanowires.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of column nanowires.
    #[must_use]
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Whether a row nanowire is broken.
    #[must_use]
    pub fn row_broken(&self, row: usize) -> bool {
        self.broken_rows.get(row).copied().unwrap_or(true)
    }

    /// Whether a column nanowire is broken.
    #[must_use]
    pub fn column_broken(&self, column: usize) -> bool {
        self.broken_columns.get(column).copied().unwrap_or(true)
    }

    /// Whether a crosspoint's switching layer is defective.
    #[must_use]
    pub fn crosspoint_defective(&self, row: usize, column: usize) -> bool {
        if row >= self.rows || column >= self.columns {
            return true;
        }
        self.defective[row * self.columns + column]
    }

    /// Whether a crosspoint is usable under this defect map (both nanowires
    /// intact and the switching layer functional).
    #[must_use]
    pub fn crosspoint_usable(&self, row: usize, column: usize) -> bool {
        !self.row_broken(row)
            && !self.column_broken(column)
            && !self.crosspoint_defective(row, column)
    }

    /// The fraction of usable crosspoints of the sampled instance.
    #[must_use]
    pub fn usable_fraction(&self) -> f64 {
        let usable = (0..self.rows)
            .flat_map(|r| (0..self.columns).map(move |c| (r, c)))
            .filter(|&(r, c)| self.crosspoint_usable(r, c))
            .count();
        usable as f64 / (self.rows * self.columns) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::ContactGroupLayout;
    use crate::geometry::LayoutRules;
    use crate::yield_model::AddressabilityProfile;

    fn decoder_yield() -> CaveYield {
        let layout = ContactGroupLayout::new(20, 32, LayoutRules::paper_default()).unwrap();
        let profile = AddressabilityProfile::new(vec![0.9; 20]).unwrap();
        CaveYield::compute(&profile, &layout).unwrap()
    }

    #[test]
    fn construction_validates_probabilities() {
        assert!(DefectModel::new(-0.1, 0.0).is_err());
        assert!(DefectModel::new(0.0, 1.5).is_err());
        assert!(DefectModel::new(f64::NAN, 0.0).is_err());
        assert!(DefectModel::new(0.02, 0.01).is_ok());
        assert_eq!(DefectModel::default(), DefectModel::ideal());
    }

    #[test]
    fn ideal_model_does_not_change_the_decoder_yield() {
        let decoder = decoder_yield();
        let composite = DefectModel::ideal().compose_with(&decoder);
        assert_eq!(composite.defect_survival, 1.0);
        assert!((composite.crossbar_yield - decoder.crossbar_yield()).abs() < 1e-12);
        assert!((composite.effective_bits(1_000) - decoder.effective_bits(1_000)).abs() < 1e-9);
    }

    #[test]
    fn defects_compose_multiplicatively() {
        let decoder = decoder_yield();
        let model = DefectModel::new(0.05, 0.02).unwrap();
        let composite = model.compose_with(&decoder);
        let expected_survival = 0.95 * 0.95 * 0.98;
        assert!((composite.defect_survival - expected_survival).abs() < 1e-12);
        assert!(
            (composite.crossbar_yield - decoder.crossbar_yield() * expected_survival).abs() < 1e-12
        );
        assert!(composite.crossbar_yield < composite.decoder_yield);
    }

    #[test]
    fn sampled_maps_match_the_rates_statistically() {
        let model = DefectModel::new(0.1, 0.05).unwrap();
        let map = model.sample_map(200, 200, 42).unwrap();
        assert_eq!(map.rows(), 200);
        assert_eq!(map.columns(), 200);
        let usable = map.usable_fraction();
        let expected = model.crosspoint_survival();
        assert!(
            (usable - expected).abs() < 0.05,
            "sampled {usable}, expected {expected}"
        );
        // Determinism: the same seed gives the same map.
        assert_eq!(map, model.sample_map(200, 200, 42).unwrap());
        assert_ne!(map, model.sample_map(200, 200, 43).unwrap());
    }

    #[test]
    fn out_of_range_lookups_count_as_defective() {
        let map = DefectModel::ideal().sample_map(4, 4, 1).unwrap();
        assert!(map.crosspoint_defective(10, 0));
        assert!(map.row_broken(10));
        assert!(map.column_broken(10));
        assert!(!map.crosspoint_usable(10, 0));
        assert!(map.crosspoint_usable(1, 1));
        assert_eq!(map.usable_fraction(), 1.0);
    }

    #[test]
    fn zero_sized_maps_are_rejected() {
        assert!(DefectModel::ideal().sample_map(0, 4, 1).is_err());
        assert!(DefectModel::ideal().sample_map(4, 0, 1).is_err());
    }
}
