//! Contact groups: the lithography-scale ohmic contacts that bridge sets of
//! adjacent nanowires to the outer CMOS circuit (Fig. 1 of the paper).
//!
//! Every contact group can uniquely address at most `Ω` nanowires (the code
//! space size), must be at least `1.5 × P_L` wide, and loses the nanowires
//! that sit inside the alignment uncertainty of its boundaries (they may be
//! contacted by two adjacent groups and are removed from the addressable
//! set, following ref. [6]).

use serde::{Deserialize, Serialize};

use device_physics::Nanometers;

use crate::error::{CrossbarError, Result};
use crate::geometry::LayoutRules;

/// How a nanowire position inside a half cave can be used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PositionKind {
    /// The nanowire can be uniquely addressed by its contact group.
    Addressable,
    /// The nanowire sits in the alignment uncertainty between two adjacent
    /// contact groups and may be contacted by both — removed from the
    /// addressable set.
    Ambiguous,
    /// The nanowire is covered by a contact group that already addresses its
    /// full code space (`Ω` nanowires); there is no code word left for it.
    Unaddressed,
}

/// The partitioning of one half cave's nanowires into contact groups.
///
/// # Examples
///
/// ```
/// use crossbar_array::{ContactGroupLayout, LayoutRules};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 40 nanowires per half cave, addressed with a code space of 16 words.
/// let layout = ContactGroupLayout::new(40, 16, LayoutRules::paper_default())?;
/// assert_eq!(layout.group_count(), 3);
/// assert_eq!(layout.nanowires_per_group(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContactGroupLayout {
    nanowire_count: usize,
    span: usize,
    addressable_per_group: usize,
    group_count: usize,
    rules: LayoutRules,
}

impl ContactGroupLayout {
    /// Computes the contact-group partitioning of a half cave with
    /// `nanowire_count` nanowires addressed by a code space of
    /// `code_space_size` words.
    ///
    /// The number of groups is minimised (Section 6.1): groups span as many
    /// nanowires as the code space allows, but never less than the minimum
    /// lithographic contact width.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when either count is zero.
    pub fn new(nanowire_count: usize, code_space_size: u128, rules: LayoutRules) -> Result<Self> {
        if nanowire_count == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: "a half cave needs at least one nanowire".to_string(),
            });
        }
        if code_space_size == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: "the code space must contain at least one word".to_string(),
            });
        }
        let code_space = usize::try_from(code_space_size.min(nanowire_count as u128))
            .expect("bounded by nanowire_count");
        let min_span = rules.min_nanowires_per_contact_group();
        let span = code_space.max(min_span).min(nanowire_count).max(1);
        let group_count = nanowire_count.div_ceil(span);
        let addressable_per_group = code_space.min(span);
        Ok(ContactGroupLayout {
            nanowire_count,
            span,
            addressable_per_group,
            group_count,
            rules,
        })
    }

    /// The number of nanowires in the half cave.
    #[must_use]
    pub fn nanowire_count(&self) -> usize {
        self.nanowire_count
    }

    /// The number of nanowires physically covered by one contact group.
    #[must_use]
    pub fn nanowires_per_group(&self) -> usize {
        self.span
    }

    /// The number of nanowires one contact group can uniquely address
    /// (`min(Ω, span)`).
    #[must_use]
    pub fn addressable_per_group(&self) -> usize {
        self.addressable_per_group
    }

    /// The number of contact groups in the half cave.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// The layout rules the partitioning was computed with.
    #[must_use]
    pub fn rules(&self) -> &LayoutRules {
        &self.rules
    }

    /// The number of internal boundaries between adjacent contact groups.
    #[must_use]
    pub fn internal_boundary_count(&self) -> usize {
        self.group_count.saturating_sub(1)
    }

    /// The nanowire positions at which internal group boundaries sit (the
    /// first position of every group but the first).
    #[must_use]
    pub fn internal_boundary_positions(&self) -> Vec<usize> {
        (1..self.group_count).map(|g| g * self.span).collect()
    }

    /// The contact group that covers a nanowire position.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidAddress`] when the position is outside
    /// the half cave.
    pub fn group_of(&self, position: usize) -> Result<usize> {
        if position >= self.nanowire_count {
            return Err(CrossbarError::InvalidAddress {
                reason: format!(
                    "nanowire position {position} outside half cave of {} nanowires",
                    self.nanowire_count
                ),
            });
        }
        Ok(position / self.span)
    }

    /// The index of a nanowire within its contact group (this is the index
    /// into the code sequence assigned to the group).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidAddress`] when the position is outside
    /// the half cave.
    pub fn offset_within_group(&self, position: usize) -> Result<usize> {
        self.group_of(position)?;
        Ok(position % self.span)
    }

    /// The expected number of nanowires lost to contact-group boundary
    /// ambiguity over the whole half cave (may be fractional: it is the
    /// alignment tolerance divided by the nanowire pitch, per internal
    /// boundary).
    #[must_use]
    pub fn expected_ambiguous_count(&self) -> f64 {
        self.internal_boundary_count() as f64 * self.rules.ambiguous_nanowires_per_boundary()
    }

    /// The number of nanowires that have no code word because their group
    /// already addresses `Ω` nanowires.
    #[must_use]
    pub fn unaddressed_count(&self) -> usize {
        (0..self.group_count)
            .map(|g| {
                let start = g * self.span;
                let size = self.span.min(self.nanowire_count - start);
                size.saturating_sub(self.addressable_per_group)
            })
            .sum()
    }

    /// The purely geometric fraction of nanowires that remain addressable
    /// (before any threshold-voltage variability is considered).
    #[must_use]
    pub fn geometric_addressable_fraction(&self) -> f64 {
        let usable = self.nanowire_count as f64
            - self.unaddressed_count() as f64
            - self.expected_ambiguous_count();
        (usable / self.nanowire_count as f64).clamp(0.0, 1.0)
    }

    /// Classifies every nanowire position of the half cave. Ambiguous
    /// positions are assigned deterministically: the expected per-boundary
    /// count is rounded and split between the two sides of each internal
    /// boundary.
    #[must_use]
    pub fn classify_positions(&self) -> Vec<PositionKind> {
        let mut kinds = vec![PositionKind::Addressable; self.nanowire_count];
        // Positions beyond the addressable range of their group.
        for (position, kind) in kinds.iter_mut().enumerate() {
            let offset = position % self.span;
            if offset >= self.addressable_per_group {
                *kind = PositionKind::Unaddressed;
            }
        }
        // Ambiguous positions around every internal boundary. Positions that
        // are already unaddressed stay unaddressed (they were unusable
        // regardless of the boundary).
        let per_boundary = self.rules.ambiguous_nanowires_per_boundary().round() as usize;
        for boundary in self.internal_boundary_positions() {
            let below = per_boundary / 2;
            let above = per_boundary - below;
            for d in 1..=below {
                if boundary >= d && kinds[boundary - d] == PositionKind::Addressable {
                    kinds[boundary - d] = PositionKind::Ambiguous;
                }
            }
            for d in 0..above {
                if boundary + d < self.nanowire_count
                    && kinds[boundary + d] == PositionKind::Addressable
                {
                    kinds[boundary + d] = PositionKind::Ambiguous;
                }
            }
        }
        kinds
    }

    /// The total length the contact groups add along the nanowire direction:
    /// every group needs its own lithographic landing pad, staggered along
    /// the nanowires so the mesowire routing can reach it.
    #[must_use]
    pub fn contact_region_length(&self) -> Nanometers {
        self.rules.min_contact_width() * self.group_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> LayoutRules {
        LayoutRules::paper_default()
    }

    #[test]
    fn construction_validates_counts() {
        assert!(ContactGroupLayout::new(0, 16, rules()).is_err());
        assert!(ContactGroupLayout::new(40, 0, rules()).is_err());
        assert!(ContactGroupLayout::new(40, 16, rules()).is_ok());
    }

    #[test]
    fn large_code_space_needs_one_group() {
        let layout = ContactGroupLayout::new(40, 1 << 20, rules()).unwrap();
        assert_eq!(layout.group_count(), 1);
        assert_eq!(layout.nanowires_per_group(), 40);
        assert_eq!(layout.addressable_per_group(), 40);
        assert_eq!(layout.internal_boundary_count(), 0);
        assert_eq!(layout.expected_ambiguous_count(), 0.0);
        assert_eq!(layout.unaddressed_count(), 0);
        assert_eq!(layout.geometric_addressable_fraction(), 1.0);
    }

    #[test]
    fn small_code_space_needs_many_groups_and_wastes_nanowires() {
        // Ω = 6 < the minimum contact span of 5? No: 6 >= 5, so span = 6.
        let layout = ContactGroupLayout::new(40, 6, rules()).unwrap();
        assert_eq!(layout.nanowires_per_group(), 6);
        assert_eq!(layout.group_count(), 7);
        assert_eq!(layout.internal_boundary_count(), 6);
        assert!(layout.expected_ambiguous_count() > 0.0);

        // Ω = 2 < 5: the group must still be 5 nanowires wide, 3 of which
        // cannot be addressed.
        let tiny = ContactGroupLayout::new(40, 2, rules()).unwrap();
        assert_eq!(tiny.nanowires_per_group(), 5);
        assert_eq!(tiny.addressable_per_group(), 2);
        assert_eq!(tiny.group_count(), 8);
        assert_eq!(tiny.unaddressed_count(), 8 * 3);
        assert!(tiny.geometric_addressable_fraction() < 0.5);
    }

    #[test]
    fn longer_codes_improve_the_geometric_fraction() {
        // This is the first mechanism behind Fig. 7: larger code spaces mean
        // fewer groups and fewer boundary losses.
        let mut previous = 0.0;
        for space in [4u128, 8, 16, 32, 64] {
            let layout = ContactGroupLayout::new(64, space, rules()).unwrap();
            let fraction = layout.geometric_addressable_fraction();
            assert!(
                fraction >= previous - 1e-12,
                "fraction must not decrease with code space ({space})"
            );
            previous = fraction;
        }
    }

    #[test]
    fn group_and_offset_lookup() {
        let layout = ContactGroupLayout::new(40, 16, rules()).unwrap();
        assert_eq!(layout.group_of(0).unwrap(), 0);
        assert_eq!(layout.group_of(15).unwrap(), 0);
        assert_eq!(layout.group_of(16).unwrap(), 1);
        assert_eq!(layout.offset_within_group(17).unwrap(), 1);
        assert!(layout.group_of(40).is_err());
        assert!(layout.offset_within_group(99).is_err());
        assert_eq!(layout.internal_boundary_positions(), vec![16, 32]);
    }

    #[test]
    fn classification_accounts_for_boundaries_and_excess() {
        let layout = ContactGroupLayout::new(12, 4, rules()).unwrap();
        // span = max(5, 4) = 5, addressable 4, groups ceil(12/5) = 3.
        assert_eq!(layout.nanowires_per_group(), 5);
        assert_eq!(layout.addressable_per_group(), 4);
        assert_eq!(layout.group_count(), 3);
        let kinds = layout.classify_positions();
        assert_eq!(kinds.len(), 12);
        // Position 4 is the unaddressed fifth nanowire of group 0 unless the
        // boundary rounding marked it ambiguous (the boundary at 5 marks
        // positions 4 and 5 with a rounded count of 2).
        assert_ne!(kinds[0], PositionKind::Unaddressed);
        assert!(kinds.contains(&PositionKind::Ambiguous));
        assert!(kinds.contains(&PositionKind::Unaddressed));
        // Classification is consistent with the geometric fraction: the
        // addressable count differs from the expectation by at most the
        // rounding of the ambiguity model.
        let addressable = kinds
            .iter()
            .filter(|k| **k == PositionKind::Addressable)
            .count() as f64;
        let expected = layout.geometric_addressable_fraction() * 12.0;
        assert!((addressable - expected).abs() <= 2.0);
    }

    #[test]
    fn contact_region_length_scales_with_group_count() {
        let few = ContactGroupLayout::new(40, 64, rules()).unwrap();
        let many = ContactGroupLayout::new(40, 6, rules()).unwrap();
        assert!(many.contact_region_length().value() > few.contact_region_length().value());
        assert_eq!(few.contact_region_length().value(), 48.0);
    }
}
