//! The crossbar area model: total footprint of the array including decoder
//! mesowires, cave walls and contact groups, and the effective area per
//! functional bit (Fig. 8 of the paper).

use serde::{Deserialize, Serialize};

use device_physics::{AreaNm2, Nanometers};

use crate::array::CrossbarSpec;
use crate::contact::ContactGroupLayout;
use crate::error::{CrossbarError, Result};
use crate::yield_model::CaveYield;

/// The footprint breakdown of a square crossbar.
///
/// Both dimensions of the square array carry the same overheads: one layer's
/// nanowires run in each direction, and each layer needs its decoder
/// mesowires, its contact-group landing pads and its cave walls at one end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarArea {
    core: Nanometers,
    cave_walls: Nanometers,
    decoder_mesowires: Nanometers,
    contact_groups: Nanometers,
}

impl CrossbarArea {
    /// Computes the area breakdown of a crossbar addressed with a code of
    /// `code_length` digits and the given contact-group layout.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when the code length is zero.
    pub fn compute(
        spec: &CrossbarSpec,
        code_length: usize,
        layout: &ContactGroupLayout,
    ) -> Result<Self> {
        if code_length == 0 {
            return Err(CrossbarError::InvalidSpec {
                reason: "code length must be at least one digit".to_string(),
            });
        }
        let rules = spec.rules();
        let core = spec.core_width();
        // Every cave is bounded by a sacrificial-layer wall of one litho pitch.
        let cave_walls = rules.litho_pitch() * spec.caves_per_layer() as f64;
        // One mesowire of one litho pitch per code digit (address line).
        let decoder_mesowires = rules.litho_pitch() * code_length as f64;
        // The contact-group landing pads of one half cave, staggered along
        // the nanowire direction.
        let contact_groups = layout.contact_region_length();
        Ok(CrossbarArea {
            core,
            cave_walls,
            decoder_mesowires,
            contact_groups,
        })
    }

    /// The nanowire-core width of one side.
    #[must_use]
    pub fn core(&self) -> Nanometers {
        self.core
    }

    /// The cave-wall overhead of one side.
    #[must_use]
    pub fn cave_walls(&self) -> Nanometers {
        self.cave_walls
    }

    /// The decoder-mesowire overhead of one side.
    #[must_use]
    pub fn decoder_mesowires(&self) -> Nanometers {
        self.decoder_mesowires
    }

    /// The contact-group overhead of one side.
    #[must_use]
    pub fn contact_groups(&self) -> Nanometers {
        self.contact_groups
    }

    /// The side length of the (square) crossbar including all overheads.
    #[must_use]
    pub fn side_length(&self) -> Nanometers {
        self.core + self.cave_walls + self.decoder_mesowires + self.contact_groups
    }

    /// The total footprint of the crossbar.
    #[must_use]
    pub fn total(&self) -> AreaNm2 {
        self.side_length().squared()
    }

    /// The decoder overhead fraction: how much of the footprint is not
    /// nanowire core.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        let side = self.side_length().value();
        let core = self.core.value();
        1.0 - (core * core) / (side * side)
    }

    /// The raw area per crosspoint (total footprint divided by the raw
    /// crosspoint count), before any yield loss.
    #[must_use]
    pub fn raw_bit_area(&self, spec: &CrossbarSpec) -> AreaNm2 {
        AreaNm2::new(self.total().value() / spec.raw_crosspoints() as f64)
    }

    /// The effective area per *functional* bit (Fig. 8): the total footprint
    /// divided by `D_RAW · Y²`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidSpec`] when the crossbar yield is
    /// zero (no functional bits).
    pub fn effective_bit_area(&self, spec: &CrossbarSpec, yield_: &CaveYield) -> Result<AreaNm2> {
        let effective_bits = yield_.effective_bits(spec.raw_crosspoints());
        if effective_bits <= 0.0 {
            return Err(CrossbarError::InvalidSpec {
                reason: "crossbar yield is zero; no functional bits".to_string(),
            });
        }
        Ok(AreaNm2::new(self.total().value() / effective_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LayoutRules;
    use crate::yield_model::AddressabilityProfile;

    fn spec() -> CrossbarSpec {
        CrossbarSpec::paper_default().unwrap()
    }

    fn layout(code_space: u128) -> ContactGroupLayout {
        ContactGroupLayout::new(40, code_space, LayoutRules::paper_default()).unwrap()
    }

    #[test]
    fn area_breakdown_adds_up() {
        let area = CrossbarArea::compute(&spec(), 10, &layout(32)).unwrap();
        assert_eq!(area.core().value(), 3630.0);
        assert_eq!(area.cave_walls().value(), 5.0 * 32.0);
        assert_eq!(area.decoder_mesowires().value(), 10.0 * 32.0);
        assert_eq!(area.contact_groups().value(), 2.0 * 48.0);
        let side = area.side_length().value();
        assert_eq!(side, 3630.0 + 160.0 + 320.0 + 96.0);
        assert!((area.total().value() - side * side).abs() < 1e-6);
        assert!(area.overhead_fraction() > 0.0 && area.overhead_fraction() < 0.5);
    }

    #[test]
    fn zero_code_length_is_rejected() {
        assert!(CrossbarArea::compute(&spec(), 0, &layout(32)).is_err());
    }

    #[test]
    fn raw_bit_area_is_near_the_pitch_squared() {
        let area = CrossbarArea::compute(&spec(), 10, &layout(32)).unwrap();
        let raw = area.raw_bit_area(&spec()).value();
        // 10 nm pitch -> 100 nm² core bit area, plus some overhead.
        assert!(raw > 100.0 && raw < 200.0, "raw bit area {raw}");
    }

    #[test]
    fn effective_bit_area_divides_by_the_yield() {
        let area = CrossbarArea::compute(&spec(), 10, &layout(32)).unwrap();
        let profile = AddressabilityProfile::new(vec![0.9; 40]).unwrap();
        let yield_ = CaveYield::compute(&profile, &layout(32)).unwrap();
        let effective = area.effective_bit_area(&spec(), &yield_).unwrap().value();
        let raw = area.raw_bit_area(&spec()).value();
        assert!(effective > raw);
        assert!(
            (effective - raw / yield_.crossbar_yield()).abs() < 1.0,
            "effective {effective}, raw {raw}"
        );
    }

    #[test]
    fn zero_yield_is_rejected() {
        let area = CrossbarArea::compute(&spec(), 10, &layout(32)).unwrap();
        let profile = AddressabilityProfile::new(vec![0.0; 40]).unwrap();
        let yield_ = CaveYield::compute(&profile, &layout(32)).unwrap();
        assert!(area.effective_bit_area(&spec(), &yield_).is_err());
    }

    #[test]
    fn longer_codes_cost_more_mesowire_area_but_fewer_contacts() {
        let short = CrossbarArea::compute(&spec(), 6, &layout(8)).unwrap();
        let long = CrossbarArea::compute(&spec(), 10, &layout(32)).unwrap();
        assert!(long.decoder_mesowires().value() > short.decoder_mesowires().value());
        assert!(long.contact_groups().value() < short.contact_groups().value());
    }
}
