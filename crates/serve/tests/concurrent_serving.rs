//! The serving layer's acceptance gates, as tests:
//!
//! * ≥ 8 concurrent clients receive reports **bit-identical** to the serial
//!   path;
//! * a second pass over the same mix is served **entirely** from the warm
//!   cache (100 % hit rate);
//! * a cache bounded below the number of distinct configurations evicts in
//!   LRU order and still serves bit-identical reports;
//! * a warm cache persisted to disk restarts warm in a fresh engine.

use std::sync::Arc;

use decoder_sim::{
    CacheConfig, DefectKind, DisturbanceKind, EngineConfig, ExecutionEngine, SimConfig,
};
use mspt_serve::{run_stress, ReportRequest, ReportServer, StressConfig};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn paper_mix() -> Vec<ReportRequest> {
    // The Fig. 7/8 sweep points: four families at their valid lengths, plus
    // one non-Gaussian variant and one sampled-defect variant so the mix
    // exercises disturbance and defect keying (and the engine's sharded
    // defect-map sampling) under concurrent load.
    let mut mix = Vec::new();
    for (kind, lengths) in [
        (CodeKind::Tree, &[6usize, 8, 10][..]),
        (CodeKind::BalancedGray, &[6, 8, 10][..]),
        (CodeKind::Hot, &[4, 6, 8][..]),
        (CodeKind::ArrangedHot, &[4, 6, 8][..]),
    ] {
        for &length in lengths {
            let code = CodeSpec::new(kind, LogicLevel::BINARY, length).unwrap();
            mix.push(ReportRequest::new(SimConfig::paper_defaults(code).unwrap()));
        }
    }
    let laplace_code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
    mix.push(ReportRequest::with_disturbance(
        SimConfig::paper_defaults(laplace_code).unwrap(),
        DisturbanceKind::Laplace,
    ));
    let defect_code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).unwrap();
    mix.push(ReportRequest::with_defects(
        SimConfig::paper_defaults(defect_code).unwrap(),
        DefectKind::sampled(0.02, 0.01, 2_009).unwrap(),
    ));
    mix
}

fn engine(threads: usize, cache: CacheConfig) -> Arc<ExecutionEngine> {
    Arc::new(ExecutionEngine::with_cache(
        EngineConfig {
            threads,
            chunk_size: 256,
        },
        cache,
    ))
}

#[test]
fn eight_clients_get_bit_identical_reports_and_a_warm_second_pass() {
    let server = ReportServer::new(engine(4, CacheConfig::default()));
    let mix = paper_mix();
    let stress = StressConfig {
        clients: 8,
        requests_per_client: 32,
        seed: 2_009,
    };

    let first = run_stress(&server, &mix, &stress).unwrap();
    assert_eq!(first.requests, 8 * 32);
    assert_eq!(
        first.mismatches, 0,
        "concurrent responses diverged from the serial reference"
    );
    // Every distinct requested configuration missed exactly once; everything
    // else already hit the shared warm cache.
    assert!(first.misses <= mix.len() as u64);
    assert!(first.hits + first.misses == first.requests);

    // Same seed ⇒ same request multiset ⇒ the second pass is all hits.
    let second = run_stress(&server, &mix, &stress).unwrap();
    assert_eq!(second.mismatches, 0);
    assert_eq!(
        second.misses, 0,
        "second pass was not served from the cache"
    );
    assert!((second.hit_rate() - 1.0).abs() < f64::EPSILON);
    assert_eq!(server.request_count(), 2 * 8 * 32);
}

#[test]
fn a_bounded_cache_still_serves_bit_identical_reports() {
    // Capacity far below the distinct-configuration count: constant
    // eviction, zero wrong answers.
    let server = ReportServer::new(engine(4, CacheConfig::unsharded(3)));
    let mix = paper_mix();
    let outcome = run_stress(
        &server,
        &mix,
        &StressConfig {
            clients: 8,
            requests_per_client: 24,
            seed: 7,
        },
    )
    .unwrap();
    assert_eq!(outcome.mismatches, 0);
    let stats = server.stats();
    assert!(stats.evictions > 0, "a capacity-3 cache never evicted");
    assert!(stats.entries <= 3);
}

#[test]
fn a_persisted_cache_restarts_warm_in_a_fresh_engine() {
    let mix = paper_mix();
    let first = ReportServer::new(engine(2, CacheConfig::default()));
    for request in &mix {
        first.serve(request).unwrap();
    }
    let path =
        std::env::temp_dir().join(format!("mspt-serve-warm-cache-{}.json", std::process::id()));
    let saved = first.engine().save_cache(&path).unwrap();
    assert_eq!(saved, mix.len());

    // A fresh engine loads the snapshot and serves the whole mix without a
    // single evaluation — and bit-identically to the original server.
    let second = ReportServer::new(engine(2, CacheConfig::default()));
    let loaded = second.engine().load_cache(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, mix.len());
    for request in &mix {
        assert_eq!(
            second.serve(request).unwrap(),
            first.serve(request).unwrap()
        );
    }
    assert_eq!(second.stats().misses, 0);
}
