//! The TCP transport's acceptance gates, as loopback tests:
//!
//! * N concurrent client connections receive reports **bit-identical** to
//!   the serial path, and a second pass over the same mix is served
//!   entirely from the warm cache;
//! * a full bounded dispatch queue sheds with the framed, typed
//!   `overloaded` error — never a hang, never a silent drop;
//! * a graceful shutdown drains in-flight requests: everything a client
//!   sent before shutdown gets a response before its connection closes.

use std::sync::Arc;
use std::time::Duration;

use decoder_sim::{
    DisturbanceKind, EngineConfig, ExecutionEngine, SimConfig, SimulationPlatform, WireErrorKind,
};
use mspt_serve::{
    parse_reply, probe_shed, run_net_stress, NetClient, NetServer, ReportRequest, ReportServer,
    ServeConfig, ShedPolicy, StressConfig, WireReply,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn mix() -> Vec<ReportRequest> {
    // Small but representative: two code families plus a disturbance
    // override, so the socket path also exercises cache keying.
    let tree = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 6).unwrap();
    let hot = CodeSpec::new(CodeKind::Hot, LogicLevel::BINARY, 4).unwrap();
    vec![
        ReportRequest::new(SimConfig::paper_defaults(tree).unwrap()),
        ReportRequest::new(SimConfig::paper_defaults(hot).unwrap()),
        ReportRequest::builder(SimConfig::paper_defaults(tree).unwrap())
            .disturbance(DisturbanceKind::Laplace)
            .build(),
    ]
}

fn report_server(threads: usize) -> ReportServer {
    ReportServer::new(Arc::new(ExecutionEngine::new(EngineConfig {
        threads,
        chunk_size: 256,
    })))
}

fn config(workers: usize, queue_bound: usize) -> ServeConfig {
    ServeConfig {
        bind_addr: "127.0.0.1:0".to_string(),
        workers,
        queue_bound,
        shed_policy: ShedPolicy::Reply,
        drain_grace: Duration::from_millis(150),
    }
}

#[test]
fn loopback_clients_get_bit_identical_reports_and_a_warm_second_pass() {
    let server = report_server(2);
    let handle = NetServer::bind(config(4, 8), Arc::new(server.clone())).unwrap();
    let mix = mix();
    let stress = StressConfig {
        clients: 4,
        requests_per_client: 16,
        seed: 2_009,
    };

    let before = server.stats();
    let first = run_net_stress(handle.local_addr(), &mix, &stress).unwrap();
    assert_eq!(first.requests, 4 * 16);
    assert_eq!(
        first.mismatches, 0,
        "TCP responses diverged from the serial reference"
    );
    assert_eq!(first.sheds, 0, "a zero-shed configuration shed");
    assert_eq!(first.wire_failures, 0);
    assert_eq!(first.latency.count(), first.requests);
    assert!(first.latency.quantile(0.5) <= first.latency.quantile(0.999));

    // Same seed ⇒ same request multiset ⇒ the whole second pass is warm.
    let after_first = server.stats();
    assert!(after_first.misses - before.misses <= mix.len() as u64);
    let second = run_net_stress(handle.local_addr(), &mix, &stress).unwrap();
    assert_eq!(second.mismatches, 0);
    assert_eq!(second.sheds, 0);
    let after_second = server.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second TCP pass was not served entirely from the warm cache"
    );

    assert_eq!(handle.served(), 2 * 4 * 16);
    handle.shutdown();
}

#[test]
fn a_full_dispatch_queue_sheds_with_the_typed_overloaded_error() {
    let server = report_server(1);
    // One worker, queue bound 1: the third connection must shed.
    let handle = NetServer::bind(config(1, 1), Arc::new(server)).unwrap();
    let request = mix().remove(0).to_json_string();

    let shed = probe_shed(&handle, &request).unwrap();
    assert_eq!(shed.kind, WireErrorKind::Overloaded);
    assert!(shed.is_retryable());
    assert_eq!(handle.shed(), 1);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = report_server(2);
    // Two workers, so with three clients one connection is still queued
    // (never picked up by a worker) when shutdown starts — the drain must
    // answer it anyway.
    let handle = NetServer::bind(config(2, 4), Arc::new(server)).unwrap();
    let addr = handle.local_addr();
    let request = mix().remove(0).to_json_string();
    let reference = SimulationPlatform::new(
        ReportRequest::from_json_str(&request)
            .unwrap()
            .effective_config(),
    )
    .evaluate()
    .unwrap();

    // Every client writes its request *before* shutdown is called…
    let mut clients: Vec<NetClient> = (0..3).map(|_| NetClient::connect(addr).unwrap()).collect();
    for client in &mut clients {
        client.send(&request).unwrap();
    }
    // …and is known to the acceptor (queued or already at a worker).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.accepted() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "acceptor never saw all three connections"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Readers must drain concurrently with the blocking shutdown call.
    let readers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            std::thread::spawn(move || {
                let response = client
                    .recv()
                    .unwrap()
                    .expect("drained request got no response");
                let eof = client.recv().unwrap();
                (response, eof)
            })
        })
        .collect();
    handle.shutdown();

    for reader in readers {
        let (response, eof) = reader.join().unwrap();
        match parse_reply(&response).unwrap() {
            WireReply::Report(report) => assert_eq!(report, reference),
            WireReply::Error(error) => panic!("in-flight request failed during drain: {error}"),
        }
        assert_eq!(eof, None, "connection did not close cleanly after drain");
    }
}
