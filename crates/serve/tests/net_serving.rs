//! The TCP transport's acceptance gates, as loopback tests:
//!
//! * N concurrent client connections receive reports **bit-identical** to
//!   the serial path, and a second pass over the same mix is served
//!   entirely from the warm cache;
//! * a full bounded dispatch queue sheds with the framed, typed
//!   `overloaded` error — never a hang, never a silent drop;
//! * a graceful shutdown drains in-flight requests: everything a client
//!   sent before shutdown gets a response before its connection closes.

use std::sync::Arc;
use std::time::Duration;

use decoder_sim::{
    DisturbanceKind, EngineConfig, ExecutionEngine, SimConfig, SimulationPlatform, WireErrorKind,
};
use mspt_serve::{
    parse_reply, parse_reply_any, probe_shed, request_to_bin, run_net_stress, run_net_stress_codec,
    NetClient, NetServer, ReportRequest, ReportServer, ServeConfig, ShedPolicy, StressConfig,
    WireCodec, WireReply,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn mix() -> Vec<ReportRequest> {
    // Small but representative: two code families plus a disturbance
    // override, so the socket path also exercises cache keying.
    let tree = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 6).unwrap();
    let hot = CodeSpec::new(CodeKind::Hot, LogicLevel::BINARY, 4).unwrap();
    vec![
        ReportRequest::new(SimConfig::paper_defaults(tree).unwrap()),
        ReportRequest::new(SimConfig::paper_defaults(hot).unwrap()),
        ReportRequest::builder(SimConfig::paper_defaults(tree).unwrap())
            .disturbance(DisturbanceKind::Laplace)
            .build(),
    ]
}

fn report_server(threads: usize) -> ReportServer {
    ReportServer::new(Arc::new(ExecutionEngine::new(EngineConfig {
        threads,
        chunk_size: 256,
    })))
}

fn config(workers: usize, queue_bound: usize) -> ServeConfig {
    ServeConfig {
        bind_addr: "127.0.0.1:0".to_string(),
        workers,
        queue_bound,
        shed_policy: ShedPolicy::Reply,
        drain_grace: Duration::from_millis(150),
    }
}

#[test]
fn loopback_clients_get_bit_identical_reports_and_a_warm_second_pass() {
    let server = report_server(2);
    let handle = NetServer::bind(config(4, 8), Arc::new(server.clone())).unwrap();
    let mix = mix();
    let stress = StressConfig {
        clients: 4,
        requests_per_client: 16,
        seed: 2_009,
    };

    let before = server.stats();
    let first = run_net_stress(handle.local_addr(), &mix, &stress).unwrap();
    assert_eq!(first.requests, 4 * 16);
    assert_eq!(
        first.mismatches, 0,
        "TCP responses diverged from the serial reference"
    );
    assert_eq!(first.sheds, 0, "a zero-shed configuration shed");
    assert_eq!(first.wire_failures, 0);
    assert_eq!(first.latency.count(), first.requests);
    assert!(first.latency.quantile(0.5) <= first.latency.quantile(0.999));

    // Same seed ⇒ same request multiset ⇒ the whole second pass is warm.
    let after_first = server.stats();
    assert!(after_first.misses - before.misses <= mix.len() as u64);
    let second = run_net_stress(handle.local_addr(), &mix, &stress).unwrap();
    assert_eq!(second.mismatches, 0);
    assert_eq!(second.sheds, 0);
    let after_second = server.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second TCP pass was not served entirely from the warm cache"
    );

    assert_eq!(handle.served(), 2 * 4 * 16);
    handle.shutdown();
}

#[test]
fn a_mixed_codec_fleet_gets_bit_identical_reports() {
    let server = report_server(2);
    let handle = NetServer::bind(config(4, 8), Arc::new(server)).unwrap();
    let addr = handle.local_addr();
    let request = mix().remove(2); // the disturbance-override request
    let reference = SimulationPlatform::new(request.effective_config())
        .evaluate()
        .unwrap();

    // One JSON client and one binary client, against the same server.
    let mut json_client = NetClient::connect(addr).unwrap();
    let mut bin_client = NetClient::connect(addr).unwrap();
    let json_frame = request.to_json_string().into_bytes();
    let bin_frame = request_to_bin(&request);
    assert!(bin_frame.len() < json_frame.len());

    let json_response = json_client.call_bytes(&json_frame).unwrap();
    let bin_response = bin_client.call_bytes(&bin_frame).unwrap();
    // The server answers each frame in the codec it arrived in.
    assert!(!decoder_sim::bincodec::is_binary(&json_response));
    assert!(decoder_sim::bincodec::is_binary(&bin_response));

    let json_reply = parse_reply_any(&json_response).unwrap();
    let bin_reply = parse_reply_any(&bin_response).unwrap();
    match (json_reply, bin_reply) {
        (WireReply::Report(from_json), WireReply::Report(from_bin)) => {
            assert_eq!(from_json, from_bin);
            assert_eq!(from_bin, reference);
            assert_eq!(
                from_json.crossbar_yield.to_bits(),
                from_bin.crossbar_yield.to_bits()
            );
        }
        other => panic!("mixed fleet got a non-report reply: {other:?}"),
    }

    // A single connection may even alternate codecs per frame.
    match parse_reply_any(&json_client.call_bytes(&bin_frame).unwrap()).unwrap() {
        WireReply::Report(report) => assert_eq!(report, reference),
        WireReply::Error(error) => panic!("codec switch mid-connection failed: {error}"),
    }

    // Malformed binary frames come back as *binary* typed bad_request
    // errors — never a hang, never a JSON reply to a binary speaker.
    let garbage = decoder_sim::bincodec::document(decoder_sim::bincodec::DOC_REQUEST, &[0xFF]);
    let response = bin_client.call_bytes(&garbage).unwrap();
    assert!(decoder_sim::bincodec::is_binary(&response));
    match parse_reply_any(&response).unwrap() {
        WireReply::Error(error) => assert_eq!(error.kind, WireErrorKind::BadRequest),
        WireReply::Report(_) => panic!("garbage request produced a report"),
    }
    handle.shutdown();
}

#[test]
fn binary_loadgen_matches_the_serial_reference_with_less_wire_traffic() {
    let server = report_server(2);
    let handle = NetServer::bind(config(4, 8), Arc::new(server.clone())).unwrap();
    let mix = mix();
    let stress = StressConfig {
        clients: 4,
        requests_per_client: 16,
        seed: 2_009,
    };

    let binary =
        run_net_stress_codec(handle.local_addr(), &mix, &stress, WireCodec::Binary).unwrap();
    assert_eq!(binary.mismatches, 0, "binary responses diverged");
    assert_eq!(binary.sheds, 0);
    assert_eq!(binary.wire_failures, 0);
    assert_eq!(binary.latency.count(), binary.requests);

    // Same seed ⇒ same request multiset ⇒ the JSON pass is fully warm and
    // answers bit-identically, but costs more bytes in both directions.
    let before = server.stats();
    let json = run_net_stress_codec(handle.local_addr(), &mix, &stress, WireCodec::Json).unwrap();
    assert_eq!(json.mismatches, 0);
    assert_eq!(
        server.stats().misses,
        before.misses,
        "JSON pass was not warm"
    );
    assert!(
        binary.bytes_sent < json.bytes_sent && binary.bytes_received < json.bytes_received,
        "binary wire traffic ({} out / {} in) is not below JSON ({} out / {} in)",
        binary.bytes_sent,
        binary.bytes_received,
        json.bytes_sent,
        json.bytes_received
    );
    handle.shutdown();
}

#[test]
fn accept_time_sheds_are_typed_for_both_codec_fleets() {
    let server = report_server(1);
    // One worker, queue bound 1: the third connection must shed.
    let handle = NetServer::bind(config(1, 1), Arc::new(server)).unwrap();
    let addr = handle.local_addr();
    let request = mix().remove(0);

    // Pin the worker with a *binary* connection, so the shed path is
    // exercised by a binary-era fleet end to end.
    let mut pinned = NetClient::connect(addr).unwrap();
    match parse_reply_any(&pinned.call_bytes(&request_to_bin(&request)).unwrap()).unwrap() {
        WireReply::Report(_) => {}
        WireReply::Error(error) => panic!("worker-pinning request failed: {error}"),
    }

    // Fill the dispatch queue with one idle connection, and wait until the
    // acceptor has queued it.
    let _filler = NetClient::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.accepted() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "acceptor never queued the filler connection"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The over-quota connection is shed before it reveals a codec, so the
    // typed overloaded reply arrives as JSON — and a binary client decodes
    // it anyway through the first-byte dispatcher.
    let mut over_quota = NetClient::connect(addr).unwrap();
    let response = over_quota
        .recv_bytes()
        .unwrap()
        .expect("shed connection closed without the typed response");
    match parse_reply_any(&response).unwrap() {
        WireReply::Error(error) => {
            assert_eq!(error.kind, WireErrorKind::Overloaded);
            assert!(error.is_retryable());
        }
        WireReply::Report(_) => panic!("over-quota connection received a report"),
    }
    assert_eq!(handle.shed(), 1);
    handle.shutdown();
}

#[test]
fn a_full_dispatch_queue_sheds_with_the_typed_overloaded_error() {
    let server = report_server(1);
    // One worker, queue bound 1: the third connection must shed.
    let handle = NetServer::bind(config(1, 1), Arc::new(server)).unwrap();
    let request = mix().remove(0).to_json_string();

    let shed = probe_shed(&handle, &request).unwrap();
    assert_eq!(shed.kind, WireErrorKind::Overloaded);
    assert!(shed.is_retryable());
    assert_eq!(handle.shed(), 1);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = report_server(2);
    // Two workers, so with three clients one connection is still queued
    // (never picked up by a worker) when shutdown starts — the drain must
    // answer it anyway.
    let handle = NetServer::bind(config(2, 4), Arc::new(server)).unwrap();
    let addr = handle.local_addr();
    let request = mix().remove(0).to_json_string();
    let reference = SimulationPlatform::new(
        ReportRequest::from_json_str(&request)
            .unwrap()
            .effective_config(),
    )
    .evaluate()
    .unwrap();

    // Every client writes its request *before* shutdown is called…
    let mut clients: Vec<NetClient> = (0..3).map(|_| NetClient::connect(addr).unwrap()).collect();
    for client in &mut clients {
        client.send(&request).unwrap();
    }
    // …and is known to the acceptor (queued or already at a worker).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.accepted() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "acceptor never saw all three connections"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Readers must drain concurrently with the blocking shutdown call.
    let readers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            std::thread::spawn(move || {
                let response = client
                    .recv()
                    .unwrap()
                    .expect("drained request got no response");
                let eof = client.recv().unwrap();
                (response, eof)
            })
        })
        .collect();
    handle.shutdown();

    for reader in readers {
        let (response, eof) = reader.join().unwrap();
        match parse_reply(&response).unwrap() {
            WireReply::Report(report) => assert_eq!(report, reference),
            WireReply::Error(error) => panic!("in-flight request failed during drain: {error}"),
        }
        assert_eq!(eof, None, "connection did not close cleanly after drain");
    }
}
