//! An HDR-style latency histogram: fixed memory, full `u64` nanosecond
//! range, bounded relative error — the accumulator behind the TCP loadgen's
//! p50/p99/p999 report.
//!
//! Values are bucketed by a power-of-two exponent with [`SUB_BUCKET_BITS`]
//! linear sub-buckets per octave, the classic HdrHistogram layout: every
//! recorded value lands in a bucket whose width is at most
//! `value / 2^SUB_BUCKET_BITS`, so any reported quantile is within ~3 % of
//! the true value while the whole histogram is one flat `Vec<u64>` — cheap
//! enough to keep one per loadgen connection and merge after the run.

use std::time::Duration;

/// Linear sub-bucket resolution bits per power-of-two octave. 5 bits = 32
/// sub-buckets, bounding the relative quantile error at `2^-5` ≈ 3.1 %.
pub const SUB_BUCKET_BITS: u32 = 5;

const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Buckets needed to cover the full `u64` range: `SUB_BUCKETS` values with
/// an exact bucket each, then one octave of `SUB_BUCKETS` sub-buckets per
/// remaining exponent.
const BUCKETS: usize = ((64 - SUB_BUCKET_BITS as usize) + 1) << SUB_BUCKET_BITS;

/// A fixed-size log-linear histogram of `u64` samples (nanoseconds, by
/// convention — [`LatencyHistogram::record_duration`] does the conversion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let exponent = 63 - value.leading_zeros(); // value ∈ [2^exponent, 2^(exponent+1))
    let shift = exponent - SUB_BUCKET_BITS;
    let sub = (value >> shift) & (SUB_BUCKETS - 1);
    ((u64::from(exponent - SUB_BUCKET_BITS + 1) << SUB_BUCKET_BITS) + sub) as usize
}

/// The largest value mapping to `index` — quantiles report this upper edge,
/// so they never understate a latency.
fn bucket_upper_edge(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = (index >> SUB_BUCKET_BITS) - 1;
    let sub = index & (SUB_BUCKETS - 1);
    let shift = octave as u32;
    ((SUB_BUCKETS + sub) << shift) + ((1u64 << shift) - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value);
    }

    /// Records one duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact — the running sum is 128-bit).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` (0.0 ≤ q ≤ 1.0): an upper bound within the
    /// histogram's ~3 % resolution, never an understatement. `quantile(0.5)`
    /// is p50, `quantile(0.999)` is p999. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the sample that dominates quantile q, 1-based.
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Never report beyond the true maximum (the top bucket's
                // upper edge can overshoot it).
                return bucket_upper_edge(index).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut hist = LatencyHistogram::new();
        for value in 0..SUB_BUCKETS {
            hist.record(value);
        }
        assert_eq!(hist.count(), SUB_BUCKETS);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), SUB_BUCKETS - 1);
        assert_eq!(hist.quantile(0.0), 0);
        assert_eq!(hist.quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_within_the_advertised_relative_error() {
        let mut hist = LatencyHistogram::new();
        let mut samples = Vec::with_capacity(10_000);
        // A deterministic spread over five decades of "nanoseconds".
        let mut value = 17u64;
        for _ in 0..10_000 {
            let sample = value % 10_000_000;
            hist.record(sample);
            samples.push(sample);
            value = value
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let reported = hist.quantile(q);
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            // Never understated, never more than the bucket resolution
            // (2^-SUB_BUCKET_BITS, doubled for margin) above the exact
            // sample, and never beyond the recorded maximum.
            assert!(reported >= exact, "q={q}: {reported} < exact {exact}");
            assert!(
                reported <= exact + exact / 16 + 1,
                "q={q}: {reported} overshoots exact {exact}"
            );
            assert!(reported <= hist.max());
        }
    }

    #[test]
    fn bucket_edges_are_monotone_and_cover_u64() {
        let mut previous = 0u64;
        for index in 1..BUCKETS {
            let edge = bucket_upper_edge(index);
            assert!(edge > previous, "bucket {index} not monotone");
            previous = edge;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for value in [0, 1, 31, 32, 63, 64, 1_000, u64::MAX / 2, u64::MAX] {
            let index = bucket_index(value);
            assert!(bucket_upper_edge(index) >= value);
        }
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for value in [3u64, 70, 900, 1_000_000, 42] {
            if value % 2 == 0 {
                left.record(value);
            } else {
                right.record(value);
            }
            all.record(value);
        }
        left.merge(&right);
        assert_eq!(left, all);
        assert_eq!(left.mean(), all.mean());
    }
}
