//! # mspt-serve
//!
//! The concurrent serving layer over the execution engine's shared report
//! cache — the first step toward the workspace's heavy-traffic north star.
//!
//! A **request** is a serialized [`SimConfig`] (plus optional
//! [`DisturbanceKind`] and [`DefectKind`] overrides), a **response** is a
//! [`PlatformReport`];
//! both travel as JSON through the std-only codec in `decoder_sim::codec`
//! (the vendored serde stand-in has no serializers, and crates.io is
//! unreachable in this build environment). Every server clone shares one
//! [`ExecutionEngine`], so every client shares one warm
//! [`ReportCache`](decoder_sim::ReportCache):
//!
//! * repeated configurations are cache **hits** — the figure-sweep workload
//!   (and spectrum-style parameter sweeps over the same points) evaluates
//!   each distinct configuration once, ever;
//! * concurrent identical requests **single-flight** onto one in-flight
//!   evaluation instead of duplicating it;
//! * reports served from the cache are **bit-identical** to a serial
//!   evaluation of the same configuration — determinism survives the cache.
//!
//! # Layering
//!
//! The serve surface is split into transport-agnostic layers:
//!
//! * [`Handler`] — the typed core contract:
//!   `serve(&ReportRequest) -> Result<PlatformReport>`. [`ReportServer`]
//!   (engine + shared cache) is the canonical implementation; tests stub it
//!   freely.
//! * [`handle_json`] — the JSON front end: any `Handler` becomes a
//!   string-in/string-out endpoint with **typed** error responses
//!   ([`wire`]: `bad_request` / `overloaded` / `internal`).
//!   [`ReportServer::handle`] is this adapter applied to itself.
//! * [`binwire`] / [`handle_bin`] — the binary front end: the same request
//!   and reply documents in the compact `decoder_sim::bincodec` encoding.
//! * [`net`] — the framed-TCP front end: a [`NetServer`] worker pool with a
//!   bounded accept queue, explicit `overloaded` load-shed responses and
//!   graceful draining shutdown, speaking 4-byte-length-prefixed frames of
//!   either wire codec — each request frame's first byte picks the codec
//!   its response comes back in, so JSON and binary clients share a server.
//!
//! [`run_stress`] is the in-process load harness behind the `serve_stress`
//! experiment binary and the CI serving gate: N client threads hammer one
//! server with a Zipf-ish mix of figure configurations and every response is
//! checked bit-for-bit against an independently computed serial reference.
//! [`loadgen`] is the same harness over real sockets, with an HDR-style
//! p50/p99/p999 latency histogram ([`latency`]).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! use decoder_sim::{EngineConfig, ExecutionEngine, SimConfig};
//! use mspt_serve::{ReportRequest, ReportServer};
//! use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = ReportServer::new(Arc::new(ExecutionEngine::new(EngineConfig {
//!     threads: 2,
//!     chunk_size: 256,
//! })));
//! let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10)?;
//! let request = ReportRequest::new(SimConfig::paper_defaults(code)?);
//!
//! // Typed path.
//! let report = server.serve(&request)?;
//! assert!(report.crossbar_yield > 0.0);
//!
//! // Wire path: JSON in, JSON out, errors become error responses.
//! let response = server.handle(&request.to_json_string());
//! assert_eq!(mspt_serve::parse_response(&response)?, report);
//!
//! // The repeat is a cache hit.
//! server.serve(&request)?;
//! assert_eq!(server.stats().hits, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use decoder_sim::codec::{
    config_from_json, config_to_json, defect_from_json, defect_to_json, disturbance_from_json,
    disturbance_to_json, JsonValue,
};
use decoder_sim::{
    chunk_seed, CacheStats, DefectKind, DisturbanceKind, ExecutionEngine, PlatformReport, Result,
    SamplingStats, SimConfig, SimulationPlatform, StageStats, WireErrorKind,
};

pub mod binwire;
pub mod latency;
pub mod loadgen;
pub mod net;
pub mod wire;

pub use binwire::{
    error_response_bin, handle_bin, ok_response_bin, parse_reply_any, parse_response_any,
    reply_from_bin, reply_to_bin, request_from_bin, request_to_bin,
};
pub use latency::LatencyHistogram;
pub use loadgen::{probe_shed, run_net_stress, run_net_stress_codec, NetStressOutcome};
pub use net::{
    read_frame, write_frame, NetClient, NetServer, NetServerHandle, ServeConfig, ShedPolicy,
};
pub use wire::{
    error_response, ok_response, parse_reply, parse_response, WireError, WireReply,
    WIRE_SCHEMA_VERSION,
};

use wire::wire_err;

/// Domain-separation tag mixed into the stress harness's per-client seeds
/// (through the workspace-wide [`chunk_seed`] primitive), so a load test
/// sharing a run seed with a Monte-Carlo estimation or a defect map draws a
/// decorrelated stream instead of replaying theirs.
pub const STRESS_SEED_DOMAIN: u64 = 0x5e12_7e57_ae5d_0004;

/// Environment variable naming the stress harness's client-thread count.
pub const STRESS_CLIENTS_ENV: &str = "MSPT_STRESS_CLIENTS";
/// Environment variable naming the per-client request count per pass.
pub const STRESS_REQUESTS_ENV: &str = "MSPT_STRESS_REQUESTS";
/// Environment variable naming the stress harness's run seed.
pub const STRESS_SEED_ENV: &str = "MSPT_STRESS_SEED";
/// Environment variable selecting the wire codec the TCP loadgen speaks:
/// `json` (the default), `binary`, or — understood by the `serve_stress`
/// binary only — `both`, which runs the loadgen once per codec and emits
/// both sets of benchmark rows.
pub const STRESS_CODEC_ENV: &str = "MSPT_STRESS_CODEC";

/// Which wire codec a loadgen connection encodes its requests in. Replies
/// always come back in the request's codec (accept-time sheds excepted —
/// those are JSON and handled by [`binwire::parse_reply_any`] either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// The PR 4/5-era JSON text wire.
    #[default]
    Json,
    /// The compact [`binwire`] binary wire.
    Binary,
}

impl WireCodec {
    /// The codec's lowercase wire name (`json` / `binary`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }

    /// Encodes a request in this codec, ready for a frame payload.
    #[must_use]
    pub fn encode_request(self, request: &ReportRequest) -> Vec<u8> {
        match self {
            WireCodec::Json => request.to_json_string().into_bytes(),
            WireCodec::Binary => binwire::request_to_bin(request),
        }
    }
}

pub(crate) fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(default)
}

pub(crate) fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(default)
}

/// One serving request: a full simulation configuration plus optional
/// disturbance and defect overrides.
///
/// The overrides exist for clients that sweep disturbance models or defect
/// rates over one platform configuration; they are applied onto the
/// configuration **before** the engine sees the request, so the cache key
/// always carries the effective disturbance and defect kinds — a Gaussian
/// and a Laplace request (or a defect-free and a defective request) with
/// the same platform parameters never alias in the cache or on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRequest {
    /// The configuration to evaluate.
    pub config: SimConfig,
    /// When set, replaces the configuration's disturbance kind.
    pub disturbance: Option<DisturbanceKind>,
    /// When set, replaces the configuration's fabrication-defect selection.
    pub defects: Option<DefectKind>,
}

impl ReportRequest {
    /// Starts building a request for a configuration. The builder is the
    /// canonical constructor; [`ReportRequest::new`] and the
    /// `with_*` constructors are thin shims over it.
    ///
    /// ```
    /// use decoder_sim::{DisturbanceKind, SimConfig};
    /// use mspt_serve::ReportRequest;
    /// use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8)?;
    /// let request = ReportRequest::builder(SimConfig::paper_defaults(code)?)
    ///     .disturbance(DisturbanceKind::Laplace)
    ///     .build();
    /// assert_eq!(request.disturbance, Some(DisturbanceKind::Laplace));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn builder(config: SimConfig) -> ReportRequestBuilder {
        ReportRequestBuilder {
            config,
            disturbance: None,
            defects: None,
        }
    }

    /// A request for a configuration as-is.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        ReportRequest::builder(config).build()
    }

    /// A request overriding the configuration's disturbance kind.
    #[must_use]
    pub fn with_disturbance(config: SimConfig, disturbance: DisturbanceKind) -> Self {
        ReportRequest::builder(config)
            .disturbance(disturbance)
            .build()
    }

    /// A request overriding the configuration's fabrication-defect
    /// selection.
    #[must_use]
    pub fn with_defects(config: SimConfig, defects: DefectKind) -> Self {
        ReportRequest::builder(config).defects(defects).build()
    }

    /// The configuration the engine actually evaluates: the request's
    /// configuration with the disturbance and defect overrides (if any)
    /// applied.
    #[must_use]
    pub fn effective_config(&self) -> SimConfig {
        let mut config = self.config.clone();
        if let Some(kind) = self.disturbance {
            config = config.with_disturbance(kind);
        }
        if let Some(defects) = self.defects {
            config = config.with_defects(defects);
        }
        config
    }

    /// Encodes the request as a wire JSON document.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        JsonValue::Object(vec![
            (
                "schema_version".to_string(),
                JsonValue::from_u64(WIRE_SCHEMA_VERSION),
            ),
            ("config".to_string(), config_to_json(&self.config)),
            (
                "disturbance".to_string(),
                self.disturbance
                    .map_or(JsonValue::Null, disturbance_to_json),
            ),
            (
                "defects".to_string(),
                self.defects.map_or(JsonValue::Null, defect_to_json),
            ),
        ])
        .render()
    }

    /// Decodes a wire JSON request. The `defects` override is optional on
    /// the wire (absent and `null` both mean "no override"), so requests
    /// from clients built before the defect dimension existed still parse.
    ///
    /// # Errors
    ///
    /// Returns [`decoder_sim::SimError::Persistence`] on malformed JSON or a mismatched
    /// `schema_version`, or propagates configuration validation errors.
    pub fn from_json_str(request_json: &str) -> Result<Self> {
        let value = JsonValue::parse(request_json)?;
        let version = value.get("schema_version")?.as_u64()?;
        if version != WIRE_SCHEMA_VERSION {
            return Err(wire_err(format!(
                "request schema version {version} does not match supported version {WIRE_SCHEMA_VERSION}"
            )));
        }
        let config = config_from_json(value.get("config")?)?;
        let disturbance = match value.get("disturbance")? {
            JsonValue::Null => None,
            kind => Some(disturbance_from_json(kind)?),
        };
        let defects = match value.get_opt("defects")? {
            None | Some(JsonValue::Null) => None,
            Some(kind) => Some(defect_from_json(kind)?),
        };
        Ok(ReportRequest {
            config,
            disturbance,
            defects,
        })
    }
}

/// Builder for [`ReportRequest`]: configuration first, overrides fluently.
#[derive(Debug, Clone)]
pub struct ReportRequestBuilder {
    config: SimConfig,
    disturbance: Option<DisturbanceKind>,
    defects: Option<DefectKind>,
}

impl ReportRequestBuilder {
    /// Overrides the configuration's disturbance kind.
    #[must_use]
    pub fn disturbance(mut self, kind: DisturbanceKind) -> Self {
        self.disturbance = Some(kind);
        self
    }

    /// Overrides the configuration's fabrication-defect selection.
    #[must_use]
    pub fn defects(mut self, kind: DefectKind) -> Self {
        self.defects = Some(kind);
        self
    }

    /// Finishes the request.
    #[must_use]
    pub fn build(self) -> ReportRequest {
        ReportRequest {
            config: self.config,
            disturbance: self.disturbance,
            defects: self.defects,
        }
    }
}

/// The transport-agnostic serving contract: one typed request in, one report
/// (or error) out. [`ReportServer`] is the canonical implementation; the
/// JSON ([`handle_json`]) and framed-TCP ([`net::NetServer`]) front ends are
/// thin adapters over any `Handler`, so alternative backends (a stub, a
/// remote proxy, a recording middleware) drop in without touching a
/// transport.
pub trait Handler: Send + Sync {
    /// Serves one typed request.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures; transports encode them as typed
    /// `internal` wire errors.
    fn serve(&self, request: &ReportRequest) -> Result<PlatformReport>;
}

/// The JSON front end over any [`Handler`]: JSON in, JSON out. Never panics
/// and never returns `Err` — malformed requests become typed `bad_request`
/// responses and evaluation failures become typed `internal` responses, so
/// one bad client cannot take a server down.
#[must_use]
pub fn handle_json(handler: &dyn Handler, request_json: &str) -> String {
    match ReportRequest::from_json_str(request_json) {
        Err(error) => error_response(&WireError::new(
            WireErrorKind::BadRequest,
            error.to_string(),
        )),
        Ok(request) => match handler.serve(&request) {
            Ok(report) => ok_response(&report),
            Err(error) => {
                error_response(&WireError::new(WireErrorKind::Internal, error.to_string()))
            }
        },
    }
}

/// The concurrent serving front end: every request is evaluated through one
/// shared [`ExecutionEngine`] and its single-flight report cache. The server
/// is `Send + Sync`; clone the `Arc` it wraps (or the server itself) into as
/// many client threads as needed.
#[derive(Debug, Clone)]
pub struct ReportServer {
    engine: Arc<ExecutionEngine>,
    requests: Arc<AtomicU64>,
}

impl ReportServer {
    /// Creates a server over a shared engine.
    #[must_use]
    pub fn new(engine: Arc<ExecutionEngine>) -> Self {
        ReportServer {
            engine,
            requests: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The shared engine behind the server.
    #[must_use]
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Total requests served (typed and wire) since construction.
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The shared report cache's counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Per-stage hit/miss/eviction counters of the engine's stage cache, in
    /// [`decoder_sim::Stage::ALL`] order — the rows the `serve_stress`
    /// harness prints and emits next to the aggregate report-cache counters.
    #[must_use]
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.engine.stage_stats()
    }

    /// The engine's cumulative Monte-Carlo sampling counters — how many
    /// sampling runs the engine computed (cache hits excluded) and how many
    /// samples the adaptive stopping rule actually drew against the
    /// requested budgets.
    #[must_use]
    pub fn sampling_stats(&self) -> SamplingStats {
        self.engine.sampling_stats()
    }

    /// Serves a typed request: applies the disturbance override, then
    /// evaluates through the engine's single-flight cache.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn serve(&self, request: &ReportRequest) -> Result<PlatformReport> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.engine.report_for(&request.effective_config())
    }

    /// Serves a wire request: JSON in, JSON out — the [`handle_json`]
    /// adapter applied to this server. Never panics and never returns `Err`
    /// — malformed requests become typed `bad_request` responses and
    /// evaluation failures become typed `internal` responses, so one bad
    /// client cannot take the server down.
    #[must_use]
    pub fn handle(&self, request_json: &str) -> String {
        handle_json(self, request_json)
    }
}

impl Handler for ReportServer {
    fn serve(&self, request: &ReportRequest) -> Result<PlatformReport> {
        ReportServer::serve(self, request)
    }
}

/// Knobs of the stress harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressConfig {
    /// Number of client threads hammering the server concurrently.
    pub clients: usize,
    /// Wire requests each client sends.
    pub requests_per_client: usize,
    /// Run seed. Client `c` draws its request indices from
    /// `chunk_seed(seed ^ STRESS_SEED_DOMAIN, c)`, so the whole request
    /// sequence is reproducible — two same-seed runs ask for the same
    /// multiset of configurations in the same per-client order.
    pub seed: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            clients: 8,
            requests_per_client: 64,
            seed: 2_009,
        }
    }
}

impl StressConfig {
    /// Reads the harness knobs from the environment once —
    /// [`STRESS_CLIENTS_ENV`], [`STRESS_REQUESTS_ENV`], [`STRESS_SEED_ENV`]
    /// — falling back to the defaults for unset or unparsable values, so
    /// binaries stop scattering ad-hoc `std::env::var` reads.
    #[must_use]
    pub fn from_env() -> Self {
        let default = StressConfig::default();
        StressConfig {
            clients: env_usize(STRESS_CLIENTS_ENV, default.clients),
            requests_per_client: env_usize(STRESS_REQUESTS_ENV, default.requests_per_client),
            seed: env_u64(STRESS_SEED_ENV, default.seed),
        }
    }
}

/// The outcome of one stress pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressOutcome {
    /// Wire requests sent across all clients.
    pub requests: u64,
    /// Responses that were **not** bit-identical to the serial reference
    /// (zero on a healthy run — asserted by the CI gate).
    pub mismatches: u64,
    /// Cache hits observed during this pass (delta over the pass).
    pub hits: u64,
    /// Cache misses observed during this pass (delta over the pass).
    pub misses: u64,
    /// Wall-clock duration of the hammering phase (excludes the serial
    /// reference computation).
    pub elapsed: Duration,
}

impl StressOutcome {
    /// Fraction of this pass's lookups served from the cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Requests per second of the hammering phase.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.requests as f64 / seconds
        }
    }
}

/// Draws one mix index from a Zipf-ish popularity law: request `mix[i]` with
/// probability proportional to `1 / (i + 1)` — a few hot configurations and
/// a long cold tail, the shape a shared warm cache is built for.
pub(crate) fn zipf_cumulative(len: usize) -> Vec<f64> {
    let mut cumulative = Vec::with_capacity(len);
    let mut total = 0.0;
    for rank in 0..len {
        total += 1.0 / (rank as f64 + 1.0);
        cumulative.push(total);
    }
    cumulative
}

pub(crate) fn zipf_index(rng: &mut StdRng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty mix");
    let draw = rng.gen::<f64>() * total;
    cumulative
        .iter()
        .position(|&bound| draw < bound)
        .unwrap_or(cumulative.len() - 1)
}

/// Hammers a server from [`StressConfig::clients`] threads with a Zipf-ish
/// mix of requests, verifying every response **bit-for-bit** against a
/// serial reference ([`SimulationPlatform::evaluate`], computed outside the
/// timed phase and without touching the server's cache).
///
/// Each client sends wire JSON through [`ReportServer::handle`] — the full
/// serialize → serve → deserialize loop, not a shortcut through the typed
/// API. Hit/miss figures are deltas over the pass, so running two passes and
/// asserting `hit_rate() == 1.0` on the second is exactly the CI gate's
/// warm-cache check.
///
/// # Errors
///
/// Propagates reference-evaluation errors and response-decoding failures.
/// Responses that decode but differ from the reference are *counted* in
/// [`StressOutcome::mismatches`] rather than short-circuiting, so a
/// determinism regression reports its blast radius.
///
/// # Panics
///
/// Panics when the mix is empty or the client/request counts are zero.
pub fn run_stress(
    server: &ReportServer,
    mix: &[ReportRequest],
    stress: &StressConfig,
) -> Result<StressOutcome> {
    assert!(!mix.is_empty(), "stress mix must not be empty");
    assert!(stress.clients > 0, "stress needs at least one client");
    assert!(
        stress.requests_per_client > 0,
        "stress needs at least one request per client"
    );

    // Serial references, computed independently of the engine and its cache.
    let references: Vec<PlatformReport> = mix
        .iter()
        .map(|request| SimulationPlatform::new(request.effective_config()).evaluate())
        .collect::<Result<_>>()?;
    let encoded: Vec<String> = mix.iter().map(ReportRequest::to_json_string).collect();

    let cumulative = zipf_cumulative(mix.len());

    let before = server.stats();
    let start = Instant::now();
    let mut per_client: Vec<Result<u64>> = Vec::with_capacity(stress.clients);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..stress.clients)
            .map(|client| {
                let encoded = &encoded;
                let references = &references;
                let cumulative = &cumulative;
                scope.spawn(move || -> Result<u64> {
                    let mut rng = StdRng::seed_from_u64(chunk_seed(
                        stress.seed ^ STRESS_SEED_DOMAIN,
                        client as u64,
                    ));
                    let mut mismatches = 0u64;
                    for _ in 0..stress.requests_per_client {
                        let index = zipf_index(&mut rng, cumulative);
                        let response = server.handle(&encoded[index]);
                        let report = parse_response(&response)?;
                        if report != references[index] {
                            mismatches += 1;
                        }
                    }
                    Ok(mismatches)
                })
            })
            .collect();
        for handle in handles {
            per_client.push(handle.join().expect("stress client panicked"));
        }
    });
    let elapsed = start.elapsed();
    let after = server.stats();

    let mut mismatches = 0u64;
    for outcome in per_client {
        mismatches += outcome?;
    }
    Ok(StressOutcome {
        requests: (stress.clients * stress.requests_per_client) as u64,
        mismatches,
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoder_sim::EngineConfig;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn request(kind: CodeKind, length: usize) -> ReportRequest {
        let code = CodeSpec::new(kind, LogicLevel::BINARY, length).unwrap();
        ReportRequest::new(SimConfig::paper_defaults(code).unwrap())
    }

    fn server(threads: usize) -> ReportServer {
        ReportServer::new(Arc::new(ExecutionEngine::new(EngineConfig {
            threads,
            chunk_size: 256,
        })))
    }

    #[test]
    fn requests_round_trip_the_wire_format() {
        let typed = ReportRequest::with_disturbance(
            request(CodeKind::Gray, 8).config,
            DisturbanceKind::Laplace,
        );
        let decoded = ReportRequest::from_json_str(&typed.to_json_string()).unwrap();
        assert_eq!(decoded, typed);
        assert_eq!(
            decoded.effective_config().disturbance(),
            DisturbanceKind::Laplace
        );

        let defective = ReportRequest::with_defects(
            request(CodeKind::Gray, 8).config,
            DefectKind::sampled(0.02, 0.01, 7).unwrap(),
        );
        let decoded = ReportRequest::from_json_str(&defective.to_json_string()).unwrap();
        assert_eq!(decoded, defective);
        assert_eq!(
            decoded.effective_config().defects().nanowire_breakage(),
            0.02
        );
    }

    #[test]
    fn requests_without_a_defects_field_still_parse() {
        // A wire request from a client built before the defect dimension
        // existed has no "defects" key at all; it must decode as "no
        // override", not be rejected.
        let wire = request(CodeKind::Tree, 8).to_json_string();
        let legacy = wire.replacen(",\"defects\":null", "", 1);
        assert_ne!(legacy, wire, "defects field not found on the wire");
        let decoded = ReportRequest::from_json_str(&legacy).unwrap();
        assert_eq!(decoded.defects, None);
        assert_eq!(decoded, ReportRequest::from_json_str(&wire).unwrap());
    }

    #[test]
    fn mismatched_wire_versions_are_rejected() {
        let good = request(CodeKind::Tree, 8).to_json_string();
        let bad = good.replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        assert!(ReportRequest::from_json_str(&bad).is_err());

        let response = server(1).handle(&good);
        let bad = response.replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        assert!(parse_response(&bad).is_err());
    }

    #[test]
    fn malformed_requests_become_error_responses() {
        let server = server(1);
        let response = server.handle("this is not json");
        let error = parse_response(&response).unwrap_err();
        assert!(error.to_string().contains("server error"));
        // And a valid follow-up request still works.
        let ok = server.handle(&request(CodeKind::Tree, 8).to_json_string());
        assert!(parse_response(&ok).is_ok());
    }

    #[test]
    fn disturbance_override_never_aliases_in_the_cache() {
        let server = server(2);
        let base = request(CodeKind::BalancedGray, 10);
        let laplace =
            ReportRequest::with_disturbance(base.config.clone(), DisturbanceKind::Laplace);
        server.serve(&base).unwrap();
        server.serve(&laplace).unwrap();
        // Two distinct cache entries: the disturbance kind is part of the key.
        assert_eq!(server.engine().cached_report_count(), 2);
        assert_eq!(server.stats().misses, 2);
    }

    #[test]
    fn defect_override_never_aliases_in_the_cache() {
        let server = server(2);
        let base = request(CodeKind::BalancedGray, 10);
        let defective = ReportRequest::with_defects(
            base.config.clone(),
            DefectKind::sampled(0.05, 0.02, 2_009).unwrap(),
        );
        let clean = server.serve(&base).unwrap();
        let composed = server.serve(&defective).unwrap();
        // Two distinct cache entries: the defect selection is part of the key.
        assert_eq!(server.engine().cached_report_count(), 2);
        assert_eq!(server.stats().misses, 2);
        // And the defective response genuinely composes the defect map.
        assert_eq!(clean.defect_survival, 1.0);
        assert!(composed.defect_survival < 1.0);
        assert!(composed.composite_yield < clean.composite_yield);
    }

    #[test]
    fn zipf_mix_covers_hot_and_cold_ranks() {
        let mut rng = StdRng::seed_from_u64(7);
        let cumulative: Vec<f64> = (0..4)
            .scan(0.0, |total, rank| {
                *total += 1.0 / (rank as f64 + 1.0);
                Some(*total)
            })
            .collect();
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[zipf_index(&mut rng, &cumulative)] += 1;
        }
        // Rank 0 is the hottest; every rank appears.
        assert!(counts[0] > counts[3]);
        assert!(counts.iter().all(|&count| count > 0));
    }
}
