//! The framed-TCP transport: a real socket under the serve layer, std only.
//!
//! # Protocol
//!
//! Connections carry a sequence of **frames**: a 4-byte big-endian length
//! prefix followed by that many bytes of one wire document — UTF-8 JSON
//! (the in-process [`handle_json`] documents) or the compact binary codec
//! ([`crate::binwire`]), told apart by the payload's first byte. Each
//! request frame produces exactly one response frame on the same
//! connection, in order, **in the codec the request arrived in** — codec
//! choice is per frame, so JSON-era clients keep working unchanged. Frames
//! above [`MAX_FRAME_BYTES`] are rejected with a typed `bad_request`
//! response. Accept-time `overloaded` sheds are written before the client
//! has revealed a codec and are therefore always JSON; binary clients
//! handle them by routing received frames through
//! [`crate::binwire::parse_reply_any`].
//!
//! # Pool, backpressure, shed
//!
//! [`NetServer::bind`] starts one acceptor thread and a fixed pool of
//! [`ServeConfig::workers`] worker threads. Accepted connections enter a
//! **bounded** dispatch queue ([`ServeConfig::queue_bound`]); each worker
//! owns one connection at a time for that connection's lifetime. When every
//! worker is busy and the queue is full, the acceptor **sheds** the new
//! connection explicitly: one framed, typed `overloaded` error response,
//! then an orderly close ([`ShedPolicy::Reply`]) — never a hang and never a
//! silent drop. Clients distinguish the shed from a real failure by its
//! wire kind and may retry later.
//!
//! # Graceful shutdown
//!
//! [`NetServerHandle::shutdown`] stops accepting, then **drains**: every
//! connection already accepted (in a worker or still queued) gets
//! [`ServeConfig::drain_grace`] to flush its in-flight requests — frames
//! that arrive within the grace window are served and answered — before the
//! connection closes. Only then do the threads exit.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use decoder_sim::{Result, WireErrorKind};

use crate::binwire::handle_bin;
use crate::wire::{error_response, wire_err, WireError};
use crate::{handle_json, Handler};

/// Environment variable naming the TCP bind address (`host:port`; port 0
/// asks the OS for a free port).
pub const NET_ADDR_ENV: &str = "MSPT_NET_ADDR";
/// Environment variable naming the worker-thread count.
pub const NET_WORKERS_ENV: &str = "MSPT_NET_WORKERS";
/// Environment variable naming the bounded dispatch-queue length.
pub const NET_QUEUE_ENV: &str = "MSPT_NET_QUEUE";
/// Environment variable naming the shed policy (`reply` or `close`).
pub const NET_SHED_ENV: &str = "MSPT_NET_SHED";
/// Environment variable naming the graceful-shutdown drain grace in
/// milliseconds.
pub const NET_DRAIN_MS_ENV: &str = "MSPT_NET_DRAIN_MS";

/// Upper bound on a single frame's payload, so a corrupt or hostile length
/// prefix cannot make a worker allocate unbounded memory.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// How often a worker blocked on an idle connection wakes to re-check the
/// shutdown flag, and how often the acceptor polls for new connections.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// What the acceptor does with a connection it cannot enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Write one framed, typed `overloaded` error response, then close —
    /// the client sees *why* it was refused. The default.
    #[default]
    Reply,
    /// Close immediately without a response (for clients that cannot parse
    /// a response before their first request anyway).
    Close,
}

impl ShedPolicy {
    fn from_env_str(value: &str) -> Option<ShedPolicy> {
        match value.trim() {
            "reply" => Some(ShedPolicy::Reply),
            "close" => Some(ShedPolicy::Close),
            _ => None,
        }
    }
}

/// Typed transport configuration, parsed **once** from the `MSPT_NET_*`
/// environment knobs by [`ServeConfig::from_env`] instead of scattering
/// `std::env::var` reads through binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port). Default
    /// `127.0.0.1:0`.
    pub bind_addr: String,
    /// Fixed worker-pool size: connections served concurrently. Default:
    /// available parallelism.
    pub workers: usize,
    /// Bound of the accept/dispatch queue: connections that may wait for a
    /// worker before the acceptor starts shedding. Default 64.
    pub queue_bound: usize,
    /// What to do with a connection when the queue is full.
    pub shed_policy: ShedPolicy,
    /// How long a draining shutdown waits for in-flight frames per
    /// connection. Default 250 ms.
    pub drain_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            workers: thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            queue_bound: 64,
            shed_policy: ShedPolicy::default(),
            drain_grace: Duration::from_millis(250),
        }
    }
}

impl ServeConfig {
    /// Reads the transport knobs from the environment once —
    /// [`NET_ADDR_ENV`], [`NET_WORKERS_ENV`], [`NET_QUEUE_ENV`],
    /// [`NET_SHED_ENV`], [`NET_DRAIN_MS_ENV`] — falling back to the
    /// defaults for unset or unparsable values.
    #[must_use]
    pub fn from_env() -> Self {
        let default = ServeConfig::default();
        ServeConfig {
            bind_addr: std::env::var(NET_ADDR_ENV)
                .ok()
                .filter(|addr| !addr.trim().is_empty())
                .unwrap_or(default.bind_addr),
            workers: crate::env_usize(NET_WORKERS_ENV, default.workers).max(1),
            queue_bound: crate::env_usize(NET_QUEUE_ENV, default.queue_bound),
            shed_policy: std::env::var(NET_SHED_ENV)
                .ok()
                .and_then(|value| ShedPolicy::from_env_str(&value))
                .unwrap_or(default.shed_policy),
            drain_grace: Duration::from_millis(env_ms(NET_DRAIN_MS_ENV, 250)),
        }
    }
}

fn env_ms(name: &str, default: u64) -> u64 {
    crate::env_u64(name, default)
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures; payloads above [`MAX_FRAME_BYTES`] are an
/// [`io::ErrorKind::InvalidInput`] error.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let length = u32::try_from(payload.len())
        .ok()
        .filter(|&length| length <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
            )
        })?;
    writer.write_all(&length.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean end of stream
/// (the peer closed between frames); an EOF mid-frame is an error.
///
/// # Errors
///
/// Propagates I/O failures; a length prefix above [`MAX_FRAME_BYTES`] is an
/// [`io::ErrorKind::InvalidData`] error.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_full(reader, &mut header)? {
        0 => return Ok(None),
        4 => {}
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame-header",
            ))
        }
    }
    let length = u32::from_be_bytes(header);
    if length > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {length} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; length as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads until `buffer` is full or EOF; returns the bytes read. Unlike
/// `read_exact`, a clean EOF at offset 0 is distinguishable.
fn read_full(reader: &mut impl Read, buffer: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buffer.len() {
        match reader.read(&mut buffer[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error) => {
                // A timeout before the first byte is "no frame yet", which
                // the caller must see as such; a timeout mid-read is a
                // stalled peer.
                if filled == 0 {
                    return Err(error);
                }
                if matches!(
                    error.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer stalled mid-frame",
                    ));
                }
                return Err(error);
            }
        }
    }
    Ok(filled)
}

/// One read attempt on a connection with a timeout armed.
enum ReadStep {
    Frame(Vec<u8>),
    Eof,
    Idle,
    Failed,
}

fn read_frame_step(stream: &mut TcpStream) -> ReadStep {
    match read_frame(stream) {
        Ok(Some(frame)) => ReadStep::Frame(frame),
        Ok(None) => ReadStep::Eof,
        Err(error)
            if matches!(
                error.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            ReadStep::Idle
        }
        Err(_) => ReadStep::Failed,
    }
}

/// A minimal bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`. `try_push`
/// fails when full — that failure *is* the backpressure signal the acceptor
/// turns into a shed.
///
/// Poison policy: every mutation under the lock is a single structural step
/// (one push, one pop, one flag flip), so a panicking holder cannot leave
/// the queue half-updated; lock acquisition therefore recovers from
/// poisoning instead of cascading the panic into every worker — the server
/// must keep serving.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

struct QueueState<T> {
    items: std::collections::VecDeque<T>,
    bound: usize,
    closed: bool,
}

enum Popped<T> {
    Item(T),
    Empty,
    Closed,
}

impl<T> BoundedQueue<T> {
    fn new(bound: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: std::collections::VecDeque::with_capacity(bound),
                bound,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues unless the queue is full or closed; returns the rejected
    /// item so the caller can shed it.
    fn try_push(&self, item: T) -> std::result::Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed || state.items.len() >= state.bound {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Pops an item, waiting up to `timeout`. A closed queue still yields
    /// its remaining items (shutdown drains them) before reporting
    /// `Closed`.
    fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Popped::Empty;
            }
            let (next, result) = self
                .available
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if result.timed_out() && state.items.is_empty() {
                return if state.closed {
                    Popped::Closed
                } else {
                    Popped::Empty
                };
            }
        }
    }

    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.available.notify_all();
    }
}

#[derive(Debug, Default)]
struct NetCounters {
    /// Connections whose accept was fully handled (queued or shed).
    accepted: AtomicU64,
    /// Request frames for which a response was produced and handed to the
    /// transport, across all connections.
    served: AtomicU64,
    /// Connections refused with the shed policy because the queue was full.
    shed: AtomicU64,
}

/// The framed-TCP server: acceptor + fixed worker pool over any
/// [`Handler`]. Constructed via [`NetServer::bind`], controlled through the
/// returned [`NetServerHandle`].
#[derive(Debug)]
pub struct NetServer;

impl NetServer {
    /// Binds the listener and starts the acceptor and worker threads.
    /// `bind_addr` port 0 picks a free port — read the actual one from
    /// [`NetServerHandle::local_addr`].
    ///
    /// # Errors
    ///
    /// Returns a persistence error when the bind address is invalid or the
    /// listener cannot be created.
    pub fn bind(config: ServeConfig, handler: Arc<dyn Handler>) -> Result<NetServerHandle> {
        let listener = TcpListener::bind(&config.bind_addr)
            .map_err(|error| wire_err(format!("bind {}: {error}", config.bind_addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|error| wire_err(format!("local_addr: {error}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|error| wire_err(format!("set_nonblocking: {error}")))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(config.queue_bound));
        let counters = Arc::new(NetCounters::default());

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let handler = Arc::clone(&handler);
                let shutdown = Arc::clone(&shutdown);
                let counters = Arc::clone(&counters);
                let drain_grace = config.drain_grace;
                thread::spawn(move || {
                    worker_loop(&queue, handler.as_ref(), &shutdown, &counters, drain_grace);
                })
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let shed_policy = config.shed_policy;
            thread::spawn(move || {
                accept_loop(&listener, &queue, &shutdown, &counters, shed_policy);
            })
        };

        Ok(NetServerHandle {
            local_addr,
            config,
            shutdown,
            queue,
            counters,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &BoundedQueue<TcpStream>,
    shutdown: &AtomicBool,
    counters: &NetCounters,
    shed_policy: ShedPolicy,
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                if let Err(rejected) = queue.try_push(stream) {
                    shed_connection(rejected, shed_policy);
                    counters.shed.fetch_add(1, Ordering::Relaxed);
                }
                // Incremented after the queue/shed decision so observers
                // that wait on this counter know the dispatch outcome of
                // every counted connection is final.
                counters.accepted.fetch_add(1, Ordering::Release);
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn shed_connection(mut stream: TcpStream, policy: ShedPolicy) {
    if policy == ShedPolicy::Reply {
        stream.set_nonblocking(false).ok();
        let response = error_response(&WireError::new(
            WireErrorKind::Overloaded,
            "server overloaded: dispatch queue full, retry later",
        ));
        write_frame(&mut stream, response.as_bytes()).ok();
        stream.shutdown(std::net::Shutdown::Write).ok();
    }
    // Dropping the stream closes it; with `Reply` the response frame is
    // already flushed, so the client reads the typed shed, then EOF.
}

fn worker_loop(
    queue: &BoundedQueue<TcpStream>,
    handler: &dyn Handler,
    shutdown: &AtomicBool,
    counters: &NetCounters,
    drain_grace: Duration,
) {
    loop {
        match queue.pop_timeout(POLL_INTERVAL) {
            Popped::Item(stream) => {
                serve_connection(stream, handler, shutdown, counters, drain_grace);
            }
            Popped::Empty => {}
            Popped::Closed => return,
        }
    }
}

/// Serves one connection until EOF, an I/O failure, or a draining shutdown.
fn serve_connection(
    mut stream: TcpStream,
    handler: &dyn Handler,
    shutdown: &AtomicBool,
    counters: &NetCounters,
    drain_grace: Duration,
) {
    // The stream came from a non-blocking listener; reads must block (with
    // a poll timeout) from here on.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
    {
        return;
    }
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if drain_deadline.is_none() && shutdown.load(Ordering::Acquire) {
            // Shutdown started: this connection gets one grace window to
            // flush requests already in flight, then closes.
            let deadline = Instant::now() + drain_grace;
            if stream.set_read_timeout(Some(drain_grace)).is_err() {
                return;
            }
            drain_deadline = Some(deadline);
        }
        if let Some(deadline) = drain_deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return;
            }
            if stream.set_read_timeout(Some(remaining)).is_err() {
                return;
            }
        }
        match read_frame_step(&mut stream) {
            ReadStep::Frame(frame) => {
                // Per-frame codec negotiation: a binary request frame gets a
                // binary reply, anything else goes down the JSON path (whose
                // typed bad_request covers non-UTF-8 garbage too), so a
                // JSON-era client never sees a byte it cannot parse.
                let response = if decoder_sim::bincodec::is_binary(&frame) {
                    handle_bin(handler, &frame)
                } else {
                    match std::str::from_utf8(&frame) {
                        Ok(request_json) => handle_json(handler, request_json).into_bytes(),
                        Err(_) => error_response(&WireError::new(
                            WireErrorKind::BadRequest,
                            "request frame is not valid UTF-8",
                        ))
                        .into_bytes(),
                    }
                };
                // Counted before the write: a client that has *received* its
                // response must already observe the increment, so the counter
                // can never lag behind what clients have seen.
                counters.served.fetch_add(1, Ordering::Relaxed);
                if write_frame(&mut stream, &response).is_err() {
                    return;
                }
            }
            ReadStep::Eof | ReadStep::Failed => return,
            ReadStep::Idle => {
                // In drain mode an idle window the size of the remaining
                // grace means the client has nothing more in flight.
                if drain_deadline.is_some() {
                    return;
                }
            }
        }
    }
}

/// Control handle of a running [`NetServer`]: address, counters, graceful
/// shutdown. Dropping the handle shuts the server down gracefully too.
#[derive(Debug)]
pub struct NetServerHandle {
    local_addr: SocketAddr,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    counters: Arc<NetCounters>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

// BoundedQueue is an internal type; keep the handle's Debug readable.
impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue").finish_non_exhaustive()
    }
}

impl NetServerHandle {
    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The configuration the server was started with.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Connections whose accept has been fully handled — dispatched to the
    /// queue or shed. Monotonic; used by tests and the shed probe to
    /// sequence deterministically against the acceptor.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.counters.accepted.load(Ordering::Acquire)
    }

    /// Request frames answered across all connections.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.counters.served.load(Ordering::Relaxed)
    }

    /// Connections refused because the dispatch queue was full.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.counters.shed.load(Ordering::Relaxed)
    }

    /// Gracefully shuts the server down: stop accepting, drain in-flight
    /// requests (each accepted connection gets [`ServeConfig::drain_grace`]
    /// to flush what it already sent), join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().ok();
        }
        // No new connections can arrive now; closing the queue lets workers
        // drain the remaining accepted connections and then exit.
        self.queue.close();
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A blocking framed-TCP client: the other half of the protocol, used by
/// the loadgen, the integration tests, and as a reference implementation
/// for external clients.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns a persistence error when the connection cannot be
    /// established.
    pub fn connect<A: ToSocketAddrs + std::fmt::Debug>(addr: A) -> Result<Self> {
        let stream = TcpStream::connect(&addr)
            .map_err(|error| wire_err(format!("connect {addr:?}: {error}")))?;
        stream.set_nodelay(true).ok();
        Ok(NetClient { stream })
    }

    /// Sends one request frame without waiting for the response.
    ///
    /// # Errors
    ///
    /// Returns a persistence error on I/O failure.
    pub fn send(&mut self, request_json: &str) -> Result<()> {
        write_frame(&mut self.stream, request_json.as_bytes())
            .map_err(|error| wire_err(format!("send frame: {error}")))
    }

    /// Receives one response frame; `Ok(None)` is a clean server-side
    /// close.
    ///
    /// # Errors
    ///
    /// Returns a persistence error on I/O failure or a non-UTF-8 frame.
    pub fn recv(&mut self) -> Result<Option<String>> {
        match read_frame(&mut self.stream) {
            Ok(None) => Ok(None),
            Ok(Some(frame)) => String::from_utf8(frame)
                .map(Some)
                .map_err(|_| wire_err("response frame is not valid UTF-8")),
            Err(error) => Err(wire_err(format!("recv frame: {error}"))),
        }
    }

    /// One full round trip: send a request frame, block for the response
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns a persistence error on I/O failure or when the server closes
    /// without responding.
    pub fn call(&mut self, request_json: &str) -> Result<String> {
        self.send(request_json)?;
        self.recv()?
            .ok_or_else(|| wire_err("server closed the connection without a response"))
    }

    /// Sends one raw request frame — the binary-codec counterpart of
    /// [`NetClient::send`].
    ///
    /// # Errors
    ///
    /// Returns a persistence error on I/O failure.
    pub fn send_bytes(&mut self, request: &[u8]) -> Result<()> {
        write_frame(&mut self.stream, request)
            .map_err(|error| wire_err(format!("send frame: {error}")))
    }

    /// Receives one raw response frame; `Ok(None)` is a clean server-side
    /// close. The frame may be in either codec (an accept-time shed is
    /// always JSON) — decode it with [`crate::binwire::parse_reply_any`].
    ///
    /// # Errors
    ///
    /// Returns a persistence error on I/O failure.
    pub fn recv_bytes(&mut self) -> Result<Option<Vec<u8>>> {
        read_frame(&mut self.stream).map_err(|error| wire_err(format!("recv frame: {error}")))
    }

    /// One full raw round trip: send a request frame, block for the
    /// response frame.
    ///
    /// # Errors
    ///
    /// Returns a persistence error on I/O failure or when the server closes
    /// without responding.
    pub fn call_bytes(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        self.send_bytes(request)?;
        self.recv_bytes()?
            .ok_or_else(|| wire_err("server closed the connection without a response"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"{\"a\":1}").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert_eq!(
            read_frame(&mut io::Cursor::new(oversized))
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );

        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"full frame").unwrap();
        truncated.truncate(truncated.len() - 3);
        assert!(read_frame(&mut io::Cursor::new(truncated)).is_err());

        // A partial header is an error too, not a clean EOF.
        assert_eq!(
            read_frame(&mut io::Cursor::new(vec![0u8, 0]))
                .unwrap_err()
                .kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_drains_when_closed() {
        let queue = BoundedQueue::new(2);
        assert!(queue.try_push(1).is_ok());
        assert!(queue.try_push(2).is_ok());
        assert_eq!(queue.try_push(3).unwrap_err(), 3);
        queue.close();
        // Remaining items still drain after close…
        assert!(matches!(
            queue.pop_timeout(Duration::from_millis(1)),
            Popped::Item(1)
        ));
        assert!(matches!(
            queue.pop_timeout(Duration::from_millis(1)),
            Popped::Item(2)
        ));
        // …then the queue reports closed, and rejects new pushes.
        assert!(matches!(
            queue.pop_timeout(Duration::from_millis(1)),
            Popped::Closed
        ));
        assert_eq!(queue.try_push(4).unwrap_err(), 4);
    }

    #[test]
    fn serve_config_env_parsing_falls_back_on_garbage() {
        // from_env must never panic on unparsable values; defaults win.
        // (Set-and-unset is safe here: Rust tests in this module that touch
        // these variables run in this one process, and no other test reads
        // them.)
        std::env::set_var(NET_WORKERS_ENV, "not-a-number");
        std::env::set_var(NET_SHED_ENV, "panic");
        let config = ServeConfig::from_env();
        std::env::remove_var(NET_WORKERS_ENV);
        std::env::remove_var(NET_SHED_ENV);
        assert_eq!(config.workers, ServeConfig::default().workers);
        assert_eq!(config.shed_policy, ShedPolicy::Reply);
    }
}
