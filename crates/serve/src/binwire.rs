//! The binary half of the wire protocol: the same request/reply documents
//! as the JSON wire, encoded through [`decoder_sim::bincodec`].
//!
//! # Negotiation
//!
//! Both codecs travel inside the same 4-byte length-prefixed frames; the
//! **first byte of each frame's payload** is the discriminator. Binary
//! documents open with `0xB1` (not a legal first byte of any JSON document
//! or of UTF-8 text), JSON with `{`. The server inspects each request frame
//! and answers in the codec the request arrived in, so one connection may
//! even mix codecs per frame and a JSON-era client keeps working against a
//! binary-capable server unchanged. The one exception is the accept-time
//! `overloaded` shed, which is written *before* the client has revealed a
//! codec and is therefore always JSON — binary clients route every received
//! frame through [`parse_reply_any`], which dispatches on the same first
//! byte.
//!
//! ```text
//! request  = document(DOC_REQUEST,
//!              section(0x01, config document)
//!              [section(0x02, disturbance body)]
//!              [section(0x03, defect body)])
//! reply    = document(DOC_REPLY,
//!              section(0x01, report document)      -- status: ok
//!            | section(0x02, kind:u8 reason:str))  -- status: error
//! ```

use decoder_sim::bincodec::{
    self, config_from_bin, config_to_bin, defect_from_bin, defect_to_bin, disturbance_from_bin,
    disturbance_to_bin, report_from_bin, report_to_bin, wire_error_kind_from_bin,
    wire_error_kind_to_bin, BinReader, BinWriter,
};
use decoder_sim::{PlatformReport, Result, WireErrorKind};

use crate::wire::{parse_reply, wire_err, WireError, WireReply};
use crate::{Handler, ReportRequest};

/// Request section holding the nested [`SimConfig`](decoder_sim::SimConfig)
/// document. Required.
const TAG_REQUEST_CONFIG: u8 = 0x01;
/// Request section holding a disturbance-override body. Optional: absent
/// means "no override", mirroring JSON `null`.
const TAG_REQUEST_DISTURBANCE: u8 = 0x02;
/// Request section holding a defect-override body. Optional, like the
/// disturbance override.
const TAG_REQUEST_DEFECTS: u8 = 0x03;

/// Reply section holding the nested report document (`status: ok`).
const TAG_REPLY_REPORT: u8 = 0x01;
/// Reply section holding a typed failure: kind byte + reason string
/// (`status: error`).
const TAG_REPLY_ERROR: u8 = 0x02;

/// Encodes a request as a binary wire document.
#[must_use]
pub fn request_to_bin(request: &ReportRequest) -> Vec<u8> {
    let mut payload = BinWriter::new();
    payload.section(TAG_REQUEST_CONFIG, &config_to_bin(&request.config));
    if let Some(kind) = request.disturbance {
        payload.section(TAG_REQUEST_DISTURBANCE, &disturbance_to_bin(kind));
    }
    if let Some(kind) = request.defects {
        payload.section(TAG_REQUEST_DEFECTS, &defect_to_bin(kind));
    }
    bincodec::document(bincodec::DOC_REQUEST, &payload.into_bytes())
}

/// Decodes a binary wire request. The override sections are optional
/// (absent means "no override"); unknown sections are skipped for forward
/// compatibility.
///
/// # Errors
///
/// Returns [`decoder_sim::SimError::Persistence`] on malformed bytes, a
/// mismatched schema version, a missing config section, or a duplicated
/// section, or propagates configuration validation errors.
pub fn request_from_bin(bytes: &[u8]) -> Result<ReportRequest> {
    let payload = bincodec::document_payload(bytes, bincodec::DOC_REQUEST)?;
    let mut reader = BinReader::new(payload);
    let mut config = None;
    let mut disturbance = None;
    let mut defects = None;
    fn store<T>(slot: &mut Option<T>, value: T, what: &str) -> Result<()> {
        if slot.replace(value).is_some() {
            return Err(wire_err(format!(
                "duplicate {what} section in binary request"
            )));
        }
        Ok(())
    }
    while let Some((tag, body)) = reader.next_section()? {
        match tag {
            TAG_REQUEST_CONFIG => store(&mut config, config_from_bin(body)?, "config")?,
            TAG_REQUEST_DISTURBANCE => {
                store(&mut disturbance, disturbance_from_bin(body)?, "disturbance")?;
            }
            TAG_REQUEST_DEFECTS => store(&mut defects, defect_from_bin(body)?, "defects")?,
            _ => {} // Forward compatibility: skip sections a later writer added.
        }
    }
    Ok(ReportRequest {
        config: config.ok_or_else(|| wire_err("binary request is missing its config section"))?,
        disturbance,
        defects,
    })
}

/// Encodes a typed reply as a binary wire document.
#[must_use]
pub fn reply_to_bin(reply: &WireReply) -> Vec<u8> {
    let mut payload = BinWriter::new();
    match reply {
        WireReply::Report(report) => {
            payload.section(TAG_REPLY_REPORT, &report_to_bin(report));
        }
        WireReply::Error(error) => {
            let mut body = BinWriter::new();
            body.put_bytes(&wire_error_kind_to_bin(error.kind));
            body.put_str(&error.reason);
            payload.section(TAG_REPLY_ERROR, &body.into_bytes());
        }
    }
    bincodec::document(bincodec::DOC_REPLY, &payload.into_bytes())
}

/// Decodes a binary wire reply. Exactly one of the report/error sections
/// must be present; unknown sections are skipped.
///
/// # Errors
///
/// Returns [`decoder_sim::SimError::Persistence`] on malformed bytes, a
/// mismatched schema version, or a reply carrying neither or both sections.
pub fn reply_from_bin(bytes: &[u8]) -> Result<WireReply> {
    let payload = bincodec::document_payload(bytes, bincodec::DOC_REPLY)?;
    let mut reader = BinReader::new(payload);
    let mut reply = None;
    while let Some((tag, body)) = reader.next_section()? {
        let decoded = match tag {
            TAG_REPLY_REPORT => WireReply::Report(report_from_bin(body)?),
            TAG_REPLY_ERROR => {
                let mut section = BinReader::new(body);
                let kind = wire_error_kind_from_bin(section.take_bytes(1)?)?;
                let reason = section.take_str()?.to_string();
                section.finish()?;
                WireReply::Error(WireError { kind, reason })
            }
            _ => continue, // Forward compatibility.
        };
        if reply.replace(decoded).is_some() {
            return Err(wire_err(
                "binary reply carries more than one report/error section",
            ));
        }
    }
    reply.ok_or_else(|| wire_err("binary reply carries neither a report nor an error section"))
}

/// Encodes a successful binary response — the counterpart of
/// [`crate::wire::ok_response`].
#[must_use]
pub fn ok_response_bin(report: &PlatformReport) -> Vec<u8> {
    reply_to_bin(&WireReply::Report(report.clone()))
}

/// Encodes a typed binary error response — the counterpart of
/// [`crate::wire::error_response`].
#[must_use]
pub fn error_response_bin(error: &WireError) -> Vec<u8> {
    reply_to_bin(&WireReply::Error(error.clone()))
}

/// The binary front end over any [`Handler`]: bytes in, bytes out. Like
/// [`crate::handle_json`] it never panics and never returns `Err` —
/// malformed requests become typed `bad_request` replies and evaluation
/// failures become typed `internal` replies.
#[must_use]
pub fn handle_bin(handler: &dyn Handler, request: &[u8]) -> Vec<u8> {
    match request_from_bin(request) {
        Err(error) => error_response_bin(&WireError::new(
            WireErrorKind::BadRequest,
            error.to_string(),
        )),
        Ok(request) => match handler.serve(&request) {
            Ok(report) => ok_response_bin(&report),
            Err(error) => {
                error_response_bin(&WireError::new(WireErrorKind::Internal, error.to_string()))
            }
        },
    }
}

/// Decodes a reply frame in **either** codec, dispatching on the first
/// byte — what every client should route received frames through, because
/// accept-time `overloaded` sheds are always JSON even on binary
/// connections.
///
/// # Errors
///
/// Returns [`decoder_sim::SimError::Persistence`] on malformed bytes in
/// either codec or a non-UTF-8 frame that is not a binary document.
pub fn parse_reply_any(bytes: &[u8]) -> Result<WireReply> {
    if bincodec::is_binary(bytes) {
        return reply_from_bin(bytes);
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| wire_err("reply frame is neither a binary document nor UTF-8 JSON"))?;
    parse_reply(text)
}

/// [`parse_reply_any`] collapsed to a report, turning a typed server
/// failure into an error — the counterpart of [`crate::parse_response`].
///
/// # Errors
///
/// Returns [`decoder_sim::SimError::Persistence`] on malformed bytes or an
/// error reply (the server-side reason is quoted in the error).
pub fn parse_response_any(bytes: &[u8]) -> Result<PlatformReport> {
    match parse_reply_any(bytes)? {
        WireReply::Report(report) => Ok(report),
        WireReply::Error(error) => Err(wire_err(format!("server error: {}", error.reason))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoder_sim::{DisturbanceKind, SimConfig};
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn request() -> ReportRequest {
        let code = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap();
        ReportRequest::builder(SimConfig::paper_defaults(code).unwrap())
            .disturbance(DisturbanceKind::Laplace)
            .build()
    }

    #[test]
    fn requests_round_trip_through_binary() {
        let typed = request();
        let bytes = request_to_bin(&typed);
        assert!(bincodec::is_binary(&bytes));
        assert_eq!(request_from_bin(&bytes).unwrap(), typed);

        // Overrides are genuinely optional sections, not nulls.
        let bare = ReportRequest::new(typed.config.clone());
        let bare_bytes = request_to_bin(&bare);
        assert!(bare_bytes.len() < bytes.len());
        assert_eq!(request_from_bin(&bare_bytes).unwrap(), bare);
    }

    #[test]
    fn error_replies_round_trip_with_their_kind() {
        for kind in WireErrorKind::ALL {
            let reply = WireReply::Error(WireError::new(kind, "queue full"));
            assert_eq!(reply_from_bin(&reply_to_bin(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn parse_reply_any_dispatches_on_the_first_byte() {
        let error = WireError::new(WireErrorKind::Overloaded, "queue full");
        let json = crate::wire::error_response(&error);
        let bin = error_response_bin(&error);
        let from_json = parse_reply_any(json.as_bytes()).unwrap();
        let from_bin = parse_reply_any(&bin).unwrap();
        assert_eq!(from_json, from_bin);
        assert!(matches!(
            from_bin,
            WireReply::Error(ref e) if e.is_retryable()
        ));
    }

    #[test]
    fn truncated_requests_fail_except_at_the_one_section_boundary() {
        let typed = request();
        let bytes = request_to_bin(&typed);
        let mut boundary_decodes = 0;
        for take in 0..bytes.len() {
            if let Ok(decoded) = request_from_bin(&bytes[..take]) {
                // The only decodable proper prefix ends exactly between the
                // config and disturbance sections, and decodes as the
                // override-free request — never as a corrupted one.
                assert_eq!(decoded, ReportRequest::new(typed.config.clone()));
                boundary_decodes += 1;
            }
        }
        assert_eq!(boundary_decodes, 1);
    }
}
