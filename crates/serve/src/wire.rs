//! The response half of the versioned JSON wire format, shared by every
//! transport front end.
//!
//! A response is either a report or a **typed** failure: the legacy
//! free-form `reason` string is still emitted (clients built against PR 4/5
//! keep parsing), but every error response now also carries a structured
//! `error` object whose `kind` is one of the
//! [`WireErrorKind`] tags —
//! `bad_request` / `overloaded` / `internal` — so clients can branch on the
//! failure class (retry an `overloaded`, fix a `bad_request`) without
//! string-matching reasons.
//!
//! ```text
//! {"schema_version":1,"status":"ok","report":{…}}
//! {"schema_version":1,"status":"error",
//!  "error":{"kind":"overloaded","reason":"…"},"reason":"…"}
//! ```

use decoder_sim::codec::{
    report_from_json, report_to_json, wire_error_kind_from_json, wire_error_kind_to_json, JsonValue,
};
use decoder_sim::{PlatformReport, Result, SimError, WireErrorKind};

/// Schema version of the wire format. Requests and responses carry it;
/// mismatched versions are rejected, never reinterpreted. The typed `error`
/// object was added *within* version 1 as a forward-compatible field: old
/// clients ignore it and read the legacy `reason`, new clients prefer it.
pub const WIRE_SCHEMA_VERSION: u64 = 1;

pub(crate) fn wire_err(reason: impl Into<String>) -> SimError {
    SimError::Persistence {
        reason: reason.into(),
    }
}

/// A typed wire-level failure: the class of the failure plus the
/// human-readable reason the server attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The failure class (`bad_request` / `overloaded` / `internal`).
    pub kind: WireErrorKind,
    /// Human-readable detail, quoted verbatim from the server.
    pub reason: String,
}

impl WireError {
    /// A typed failure with a reason.
    #[must_use]
    pub fn new(kind: WireErrorKind, reason: impl Into<String>) -> Self {
        WireError {
            kind,
            reason: reason.into(),
        }
    }

    /// Whether a client may safely retry the request later (only
    /// [`WireErrorKind::Overloaded`] — the request was never evaluated).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        self.kind == WireErrorKind::Overloaded
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_wire_str(), self.reason)
    }
}

/// A decoded wire response: the report, or the server's typed failure.
#[derive(Debug, Clone, PartialEq)]
pub enum WireReply {
    /// `status: ok` — the evaluated report.
    Report(PlatformReport),
    /// `status: error` — the typed failure.
    Error(WireError),
}

fn versioned(mut fields: Vec<(String, JsonValue)>) -> String {
    fields.insert(
        0,
        (
            "schema_version".to_string(),
            JsonValue::from_u64(WIRE_SCHEMA_VERSION),
        ),
    );
    JsonValue::Object(fields).render()
}

/// Encodes a successful response.
#[must_use]
pub fn ok_response(report: &PlatformReport) -> String {
    versioned(vec![
        ("status".to_string(), JsonValue::String("ok".to_string())),
        ("report".to_string(), report_to_json(report)),
    ])
}

/// Encodes a typed error response. The legacy top-level `reason` is kept so
/// clients that predate the typed `error` object still see the failure.
#[must_use]
pub fn error_response(error: &WireError) -> String {
    versioned(vec![
        ("status".to_string(), JsonValue::String("error".to_string())),
        (
            "error".to_string(),
            JsonValue::Object(vec![
                ("kind".to_string(), wire_error_kind_to_json(error.kind)),
                (
                    "reason".to_string(),
                    JsonValue::String(error.reason.clone()),
                ),
            ]),
        ),
        (
            "reason".to_string(),
            JsonValue::String(error.reason.clone()),
        ),
    ])
}

/// Decodes a wire response into the typed reply — the client half of the
/// protocol for callers that need to branch on the failure class (the TCP
/// loadgen counts `overloaded` sheds separately from mismatches).
///
/// Responses from servers that predate the typed `error` object (legacy
/// top-level `reason` only) decode as [`WireErrorKind::Internal`].
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON, a mismatched
/// `schema_version`, or an unknown status/kind tag.
pub fn parse_reply(response_json: &str) -> Result<WireReply> {
    let value = JsonValue::parse(response_json)?;
    let version = value.get("schema_version")?.as_u64()?;
    if version != WIRE_SCHEMA_VERSION {
        return Err(wire_err(format!(
            "response schema version {version} does not match supported version {WIRE_SCHEMA_VERSION}"
        )));
    }
    match value.get("status")?.as_str()? {
        "ok" => Ok(WireReply::Report(report_from_json(value.get("report")?)?)),
        "error" => match value.get_opt("error")? {
            Some(typed) => Ok(WireReply::Error(WireError {
                kind: wire_error_kind_from_json(typed.get("kind")?)?,
                reason: typed.get("reason")?.as_str()?.to_string(),
            })),
            None => Ok(WireReply::Error(WireError::new(
                WireErrorKind::Internal,
                value.get("reason")?.as_str()?,
            ))),
        },
        other => Err(wire_err(format!("unknown response status {other:?}"))),
    }
}

/// Parses a wire response back into a report, collapsing any server-side
/// failure into an error — the convenient client half for callers that do
/// not branch on the failure class.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON, a mismatched
/// `schema_version`, or an error response (the server-side reason is quoted
/// in the error).
pub fn parse_response(response_json: &str) -> Result<PlatformReport> {
    match parse_reply(response_json)? {
        WireReply::Report(report) => Ok(report),
        WireReply::Error(error) => Err(wire_err(format!("server error: {}", error.reason))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_responses_carry_both_typed_and_legacy_fields() {
        let encoded = error_response(&WireError::new(WireErrorKind::Overloaded, "queue full"));
        let value = JsonValue::parse(&encoded).unwrap();
        assert_eq!(value.get("status").unwrap().as_str().unwrap(), "error");
        assert_eq!(
            value
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap(),
            "overloaded"
        );
        // The legacy free-form reason is still present for old clients.
        assert_eq!(value.get("reason").unwrap().as_str().unwrap(), "queue full");

        match parse_reply(&encoded).unwrap() {
            WireReply::Error(error) => {
                assert_eq!(error.kind, WireErrorKind::Overloaded);
                assert!(error.is_retryable());
                assert_eq!(error.to_string(), "overloaded: queue full");
            }
            WireReply::Report(_) => panic!("an error response decoded as a report"),
        }
    }

    #[test]
    fn legacy_reason_only_error_responses_decode_as_internal() {
        let legacy = format!(
            "{{\"schema_version\":{WIRE_SCHEMA_VERSION},\"status\":\"error\",\"reason\":\"boom\"}}"
        );
        match parse_reply(&legacy).unwrap() {
            WireReply::Error(error) => {
                assert_eq!(error.kind, WireErrorKind::Internal);
                assert_eq!(error.reason, "boom");
                assert!(!error.is_retryable());
            }
            WireReply::Report(_) => panic!("a legacy error response decoded as a report"),
        }
        // And the collapsing client path still quotes the reason.
        let collapsed = parse_response(&legacy).unwrap_err();
        assert!(collapsed.to_string().contains("server error: boom"));
    }
}
