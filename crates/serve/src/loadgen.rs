//! The TCP loadgen: the stress harness of [`run_stress`](crate::run_stress)
//! driven over real sockets, with per-request latency recorded into an
//! HDR-style histogram ([`LatencyHistogram`]) so a run reports sustained
//! RPS **and** p50/p99/p999 tail latency, not just a throughput average.
//!
//! Every response is still bit-checked against a serial reference — the
//! network transport inherits the determinism contract: framing, worker
//! pools and queues may reorder *requests*, never change *answers*.

use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use decoder_sim::{chunk_seed, PlatformReport, Result, SimulationPlatform, WireErrorKind};

use crate::binwire::parse_reply_any;
use crate::latency::LatencyHistogram;
use crate::net::{NetClient, NetServerHandle, ShedPolicy};
use crate::wire::{parse_reply, wire_err, WireError, WireReply};
use crate::{
    zipf_cumulative, zipf_index, ReportRequest, StressConfig, WireCodec, STRESS_SEED_DOMAIN,
};

/// The outcome of one TCP loadgen pass.
#[derive(Debug, Clone, PartialEq)]
pub struct NetStressOutcome {
    /// Request frames sent across all connections (including any that were
    /// refused by a shed).
    pub requests: u64,
    /// Responses that were **not** bit-identical to the serial reference
    /// (zero on a healthy run — asserted by the CI gate).
    pub mismatches: u64,
    /// Requests refused with the typed `overloaded` shed. A connection that
    /// is shed counts all of its budgeted requests here — the server
    /// refused the connection, so none of them were served.
    pub sheds: u64,
    /// Error replies of any kind *other* than `overloaded` (zero on a
    /// healthy run).
    pub wire_failures: u64,
    /// Wall-clock duration of the hammering phase (excludes the serial
    /// reference computation).
    pub elapsed: Duration,
    /// Per-request round-trip latency (send frame → response frame parsed).
    pub latency: LatencyHistogram,
    /// Request payload bytes put on the wire (frame headers excluded) — with
    /// [`NetStressOutcome::bytes_received`], the wire-cost side of the
    /// JSON-vs-binary codec comparison.
    pub bytes_sent: u64,
    /// Response payload bytes read off the wire (frame headers excluded).
    pub bytes_received: u64,
}

impl NetStressOutcome {
    /// Requests per second of the hammering phase.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.requests as f64 / seconds
        }
    }
}

struct ClientTally {
    mismatches: u64,
    sheds: u64,
    wire_failures: u64,
    latency: LatencyHistogram,
    bytes_sent: u64,
    bytes_received: u64,
}

/// Drives [`StressConfig::clients`] concurrent TCP connections against a
/// framed server at `addr` with the same seeded Zipf request streams as the
/// in-process [`run_stress`](crate::run_stress) — same seed, same multiset
/// of configurations — verifying every report **bit-for-bit** against a
/// serial reference computed outside the timed phase.
///
/// A typed `overloaded` reply marks the whole connection as shed (the
/// server refuses at accept time): the client stops sending and its
/// remaining budgeted requests are counted in
/// [`NetStressOutcome::sheds`]. Configure `workers ≥ clients` for a
/// zero-shed measurement run.
///
/// # Errors
///
/// Propagates reference-evaluation errors, connection failures and
/// response-decoding failures. Responses that decode but differ from the
/// reference are *counted* in [`NetStressOutcome::mismatches`] rather than
/// short-circuiting, so a determinism regression reports its blast radius.
///
/// # Panics
///
/// Panics when the mix is empty or the client/request counts are zero.
pub fn run_net_stress(
    addr: SocketAddr,
    mix: &[ReportRequest],
    stress: &StressConfig,
) -> Result<NetStressOutcome> {
    run_net_stress_codec(addr, mix, stress, WireCodec::Json)
}

/// [`run_net_stress`] with an explicit wire codec: requests are encoded in
/// `codec` and every reply is decoded through the first-byte dispatcher
/// ([`parse_reply_any`]), so accept-time JSON sheds are understood on
/// binary connections too. The verification contract is identical in both
/// codecs — same seeded streams, same bit-for-bit reference check.
///
/// # Errors
///
/// As [`run_net_stress`].
///
/// # Panics
///
/// As [`run_net_stress`].
pub fn run_net_stress_codec(
    addr: SocketAddr,
    mix: &[ReportRequest],
    stress: &StressConfig,
    codec: WireCodec,
) -> Result<NetStressOutcome> {
    assert!(!mix.is_empty(), "loadgen mix must not be empty");
    assert!(stress.clients > 0, "loadgen needs at least one connection");
    assert!(
        stress.requests_per_client > 0,
        "loadgen needs at least one request per connection"
    );

    // Serial references, computed independently of the server and its cache.
    let references: Vec<PlatformReport> = mix
        .iter()
        .map(|request| SimulationPlatform::new(request.effective_config()).evaluate())
        .collect::<Result<_>>()?;
    let encoded: Vec<Vec<u8>> = mix
        .iter()
        .map(|request| codec.encode_request(request))
        .collect();
    let cumulative = zipf_cumulative(mix.len());

    let start = Instant::now();
    let mut per_client: Vec<Result<ClientTally>> = Vec::with_capacity(stress.clients);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..stress.clients)
            .map(|client| {
                let encoded = &encoded;
                let references = &references;
                let cumulative = &cumulative;
                scope.spawn(move || -> Result<ClientTally> {
                    let mut connection = NetClient::connect(addr)?;
                    let mut rng = StdRng::seed_from_u64(chunk_seed(
                        stress.seed ^ STRESS_SEED_DOMAIN,
                        client as u64,
                    ));
                    let mut tally = ClientTally {
                        mismatches: 0,
                        sheds: 0,
                        wire_failures: 0,
                        latency: LatencyHistogram::new(),
                        bytes_sent: 0,
                        bytes_received: 0,
                    };
                    for sent in 0..stress.requests_per_client {
                        let index = zipf_index(&mut rng, cumulative);
                        let sent_at = Instant::now();
                        let response = connection.call_bytes(&encoded[index])?;
                        let reply = parse_reply_any(&response)?;
                        tally.latency.record_duration(sent_at.elapsed());
                        tally.bytes_sent += encoded[index].len() as u64;
                        tally.bytes_received += response.len() as u64;
                        match reply {
                            WireReply::Report(report) => {
                                if report != references[index] {
                                    tally.mismatches += 1;
                                }
                            }
                            WireReply::Error(error) if error.kind == WireErrorKind::Overloaded => {
                                // The connection itself was refused; every
                                // request this client still had budgeted is
                                // a shed, and the socket is dead.
                                tally.sheds += (stress.requests_per_client - sent) as u64;
                                break;
                            }
                            WireReply::Error(_) => {
                                tally.wire_failures += 1;
                            }
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        for handle in handles {
            per_client.push(handle.join().expect("loadgen connection panicked"));
        }
    });
    let elapsed = start.elapsed();

    let mut outcome = NetStressOutcome {
        requests: (stress.clients * stress.requests_per_client) as u64,
        mismatches: 0,
        sheds: 0,
        wire_failures: 0,
        elapsed,
        latency: LatencyHistogram::new(),
        bytes_sent: 0,
        bytes_received: 0,
    };
    for tally in per_client {
        let tally = tally?;
        outcome.mismatches += tally.mismatches;
        outcome.sheds += tally.sheds;
        outcome.wire_failures += tally.wire_failures;
        outcome.latency.merge(&tally.latency);
        outcome.bytes_sent += tally.bytes_sent;
        outcome.bytes_received += tally.bytes_received;
    }
    Ok(outcome)
}

/// Deterministically exercises the load-shed path of a running server and
/// returns the typed shed it received:
///
/// 1. opens `workers` connections and completes one request on each, so
///    every worker is pinned to a live connection;
/// 2. opens `queue_bound` idle connections and waits (via
///    [`NetServerHandle::accepted`]) until the acceptor has queued them;
/// 3. opens one more connection, whose first read **must** be the framed,
///    typed `overloaded` error followed by an orderly close.
///
/// Requires [`ShedPolicy::Reply`] — with `Close` there is no response to
/// observe.
///
/// # Errors
///
/// Returns an error when the server runs a non-`Reply` shed policy, when a
/// pinning request fails, or when the over-quota connection receives
/// anything other than a typed `overloaded` reply.
pub fn probe_shed(handle: &NetServerHandle, request_json: &str) -> Result<WireError> {
    if handle.config().shed_policy != ShedPolicy::Reply {
        return Err(wire_err(
            "probe_shed requires ShedPolicy::Reply (a Close shed has no observable response)",
        ));
    }
    let addr = handle.local_addr();
    let accepted_before = handle.accepted();
    let workers = handle.config().workers as u64;
    let queue_bound = handle.config().queue_bound as u64;

    // Pin every worker: a served request proves the worker owns the
    // connection, and keeping the client alive keeps it owned.
    let mut pinned = Vec::with_capacity(workers as usize);
    for _ in 0..workers {
        let mut client = NetClient::connect(addr)?;
        match parse_reply(&client.call(request_json)?)? {
            WireReply::Report(_) => pinned.push(client),
            WireReply::Error(error) => {
                return Err(wire_err(format!(
                    "worker-pinning request failed before the probe: {error}"
                )))
            }
        }
    }

    // Fill the dispatch queue with idle connections, then wait until the
    // acceptor has fully handled them (accepted() counts a connection only
    // after its queue/shed decision).
    let filler: Vec<NetClient> = (0..queue_bound)
        .map(|_| NetClient::connect(addr))
        .collect::<Result<_>>()?;
    wait_for_accepted(handle, accepted_before + workers + queue_bound)?;

    // One connection over quota: the acceptor must shed it with the typed
    // response.
    let mut over_quota = NetClient::connect(addr)?;
    let response = over_quota
        .recv()?
        .ok_or_else(|| wire_err("shed connection closed without the typed overloaded response"))?;
    let error = match parse_reply(&response)? {
        WireReply::Error(error) if error.kind == WireErrorKind::Overloaded => error,
        WireReply::Error(error) => {
            return Err(wire_err(format!(
                "shed connection received a non-overloaded error: {error}"
            )))
        }
        WireReply::Report(_) => {
            return Err(wire_err(
                "shed connection unexpectedly received a report response",
            ))
        }
    };
    // …followed by an orderly EOF, never a hang or a reset.
    if over_quota.recv()?.is_some() {
        return Err(wire_err("shed connection received a second frame"));
    }
    drop(filler);
    drop(pinned);
    Ok(error)
}

fn wait_for_accepted(handle: &NetServerHandle, target: u64) -> Result<()> {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.accepted() < target {
        if Instant::now() > deadline {
            return Err(wire_err(format!(
                "acceptor never reached {target} handled connections (at {})",
                handle.accepted()
            )));
        }
        thread::sleep(Duration::from_millis(1));
    }
    Ok(())
}
