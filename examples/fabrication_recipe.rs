//! Walk through the paper's worked example (Sections 4–5): a ternary half
//! cave of three nanowires, its pattern/doping/step matrices, the fabrication
//! plan, and the improvement the Gray arrangement brings.
//!
//! Run with: `cargo run --example fabrication_recipe`

use mspt_nanowire_decoder::fabrication::{
    FabricationCost, FabricationPlan, PatternMatrix, StepDopingMatrix, VariabilityMatrix,
};
use mspt_nanowire_decoder::physics::{DopingLadder, VariabilityModel};
use nanowire_codes::LogicLevel;

fn print_matrix(label: &str, rows: &[Vec<f64>]) {
    println!("{label}:");
    for row in rows {
        let rendered: Vec<String> = row.iter().map(|v| format!("{v:>5.1}")).collect();
        println!("  [{}]", rendered.join(" "));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ladder = DopingLadder::paper_example();
    let sigma = VariabilityModel::paper_default();

    // Example 1 of the paper: the tree-code pattern.
    let tree_pattern = PatternMatrix::from_rows(
        vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
        LogicLevel::TERNARY,
    )?;
    println!("== Tree-code pattern (Examples 1–4 of the paper) ==");
    let steps = StepDopingMatrix::from_pattern(&tree_pattern, &ladder)?;
    print_matrix(
        "step doping matrix S [1e18 cm^-3]",
        &steps.in_1e18().to_rows(),
    );
    let cost = FabricationCost::from_pattern(&tree_pattern, &ladder)?;
    println!(
        "per-step lithography/doping passes φ = {:?}",
        cost.per_step()
    );
    println!("total fabrication complexity Φ = {}", cost.total());
    let variability = VariabilityMatrix::from_pattern(&tree_pattern, &ladder, &sigma)?;
    println!("‖Σ‖₁ = {} · σ_T²", variability.l1_norm_in_sigma_units());

    // Example 5/6: the Gray arrangement of the same patterns.
    let gray_pattern = PatternMatrix::from_rows(
        vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 2, 1, 0]],
        LogicLevel::TERNARY,
    )?;
    println!();
    println!("== Gray-code arrangement (Examples 5–6 of the paper) ==");
    let gray_steps = StepDopingMatrix::from_pattern(&gray_pattern, &ladder)?;
    print_matrix(
        "step doping matrix S [1e18 cm^-3]",
        &gray_steps.in_1e18().to_rows(),
    );
    let gray_cost = FabricationCost::from_pattern(&gray_pattern, &ladder)?;
    println!("total fabrication complexity Φ = {}", gray_cost.total());
    let gray_variability = VariabilityMatrix::from_pattern(&gray_pattern, &ladder, &sigma)?;
    println!(
        "‖Σ‖₁ = {} · σ_T²",
        gray_variability.l1_norm_in_sigma_units()
    );

    // The concrete process flow for the Gray arrangement.
    println!();
    println!("== Fabrication plan of the Gray arrangement ==");
    let plan = FabricationPlan::for_pattern(&gray_pattern, &ladder)?;
    for event in plan.events() {
        println!("  {event:?}");
    }
    let audit = plan.audit(&gray_pattern, &ladder)?;
    println!(
        "audit: {} lithography passes, Φ = {}, total dose hits = {}",
        audit.lithography_passes,
        audit.fabrication_cost.total(),
        audit.dose_counts.total()
    );
    Ok(())
}
