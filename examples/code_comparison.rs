//! Compare the five code families of the paper at a common code length:
//! fabrication complexity, variability, yield and bit area side by side.
//!
//! Run with: `cargo run --example code_comparison`

use mspt_nanowire_decoder::decoder::{CodeSelection, DecoderDesign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Comparison of code families on the paper's 16 kB crossbar platform");
    println!(
        "{:<22} {:>4} {:>8} {:>10} {:>12} {:>14}",
        "code", "M", "Φ", "mean Σ/σ²", "Y² [%]", "bit area [nm²]"
    );

    for (kind, code_length) in [
        (CodeSelection::Tree, 8),
        (CodeSelection::Gray, 8),
        (CodeSelection::BalancedGray, 8),
        (CodeSelection::Hot, 8),
        (CodeSelection::ArrangedHot, 8),
    ] {
        let design = DecoderDesign::builder()
            .code(kind)
            .code_length(code_length)
            .nanowires_per_half_cave(20)
            .build()?;
        let report = design.evaluate()?;
        println!(
            "{:<22} {:>4} {:>8} {:>10.2} {:>12.1} {:>14.1}",
            kind.to_string(),
            code_length,
            report.fabrication_steps,
            report.mean_variability,
            report.crossbar_yield * 100.0,
            report.effective_bit_area,
        );
    }

    println!();
    println!("The Gray-style arrangements (GC, BGC, AHC) dominate their baselines");
    println!("(TC, HC) in every metric, as Propositions 4 and 5 of the paper predict.");
    Ok(())
}
