//! Use a decoder design to operate a functional crossbar memory: store a
//! message in the usable crosspoints and read it back, reporting how much of
//! the raw capacity survives the decoder losses.
//!
//! Run with: `cargo run --example crossbar_memory`

use mspt_nanowire_decoder::crossbar::{ContactGroupLayout, CrossbarMemory, LayoutRules};
use mspt_nanowire_decoder::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An arranged-hot-code decoder: 20 code words of length 6 are enough to
    // address a 20-nanowire half cave with a single contact group.
    let code = CodeSpec::new(CodeKind::ArrangedHot, LogicLevel::BINARY, 6)?.generate()?;
    let layout = ContactGroupLayout::new(20, code.len() as u128, LayoutRules::paper_default())?;
    let mut memory = CrossbarMemory::new(&code, layout.clone(), &code, layout)?;

    println!(
        "crossbar memory: {} x {} nanowires",
        memory.row_count(),
        memory.column_count()
    );
    println!("raw capacity:       {} bits", memory.raw_capacity());
    println!("effective capacity: {} bits", memory.effective_capacity());

    // Store a short message bit by bit in the usable crosspoints.
    let message = b"MSPT";
    let bits: Vec<bool> = message
        .iter()
        .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
        .collect();

    let mut cursor = 0usize;
    'outer: for row in 0..memory.row_count() {
        for column in 0..memory.column_count() {
            if cursor >= bits.len() {
                break 'outer;
            }
            if memory.crosspoint_usable(row, column) {
                memory.write(row, column, bits[cursor])?;
                cursor += 1;
            }
        }
    }
    assert_eq!(
        cursor,
        bits.len(),
        "message must fit the effective capacity"
    );

    // Read it back.
    let mut recovered_bits = Vec::with_capacity(bits.len());
    let mut cursor = 0usize;
    'outer: for row in 0..memory.row_count() {
        for column in 0..memory.column_count() {
            if cursor >= bits.len() {
                break 'outer;
            }
            if memory.crosspoint_usable(row, column) {
                recovered_bits.push(memory.read(row, column)?);
                cursor += 1;
            }
        }
    }
    let recovered: Vec<u8> = recovered_bits
        .chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .fold(0u8, |acc, &bit| (acc << 1) | u8::from(bit))
        })
        .collect();
    println!(
        "stored and recovered: {}",
        String::from_utf8_lossy(&recovered)
    );
    assert_eq!(&recovered, message);
    Ok(())
}
