//! Quickstart: design an MSPT nanowire decoder, evaluate it on the paper's
//! 16 kB crossbar platform and print the quantities the paper reports.
//!
//! Run with: `cargo run --example quickstart`

use mspt_nanowire_decoder::decoder::{CodeSelection, DecoderDesign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A balanced-Gray-code decoder with 10 doping regions per nanowire —
    // the configuration the paper finds to give the smallest bit area.
    let design = DecoderDesign::builder()
        .code(CodeSelection::BalancedGray)
        .code_length(10)
        .nanowires_per_half_cave(20)
        .build()?;

    let report = design.evaluate()?;

    println!("MSPT nanowire-decoder quickstart");
    println!("================================");
    println!("code:                     {}", report.code);
    println!(
        "nanowires per half cave:  {}",
        report.nanowires_per_half_cave
    );
    println!("fabrication steps (Φ):    {}", report.fabrication_steps);
    println!("lithography passes:       {}", report.lithography_passes);
    println!("distinct implant doses:   {}", report.distinct_doses);
    println!("mean variability (σ_T²):  {:.2}", report.mean_variability);
    println!(
        "cave yield (Y):           {:.1}%",
        report.cave_yield * 100.0
    );
    println!(
        "crossbar yield (Y²):      {:.1}%",
        report.crossbar_yield * 100.0
    );
    println!("effective bits:           {:.0}", report.effective_bits);
    println!("raw bit area:             {:.1} nm²", report.raw_bit_area);
    println!(
        "effective bit area:       {:.1} nm²",
        report.effective_bit_area
    );
    println!("contact groups:           {}", report.contact_groups);

    Ok(())
}
