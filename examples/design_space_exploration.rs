//! Explore the paper's design space (all five code families, binary logic,
//! code lengths 4–10) and rank the candidates by effective bit area — the
//! optimisation behind the paper's headline "169 nm² per bit".
//!
//! Run with: `cargo run --example design_space_exploration`

use mspt_nanowire_decoder::decoder::{
    optimize, CodeSelection, DecoderDesign, DesignSpace, Objective,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = DecoderDesign::builder()
        .code(CodeSelection::Tree)
        .code_length(8)
        .nanowires_per_half_cave(20)
        .build()?;

    let outcome = optimize(&base, &DesignSpace::paper_default(), Objective::BitArea)?;

    println!("Design-space exploration: minimise the effective bit area");
    println!(
        "{:<22} {:>4} {:>12} {:>16}",
        "code", "M", "Y² [%]", "bit area [nm²]"
    );
    for candidate in &outcome.ranked {
        println!(
            "{:<22} {:>4} {:>12.1} {:>16.1}",
            candidate.code.kind().to_string(),
            candidate.code.code_length(),
            candidate.report.crossbar_yield * 100.0,
            candidate.report.effective_bit_area,
        );
    }
    let best = outcome.ranked.first().expect("non-empty design space");
    println!();
    println!(
        "best design: {} at M = {} with {:.1} nm² per functional bit",
        best.code.kind(),
        best.code.code_length(),
        best.report.effective_bit_area
    );
    Ok(())
}
